//! Qualitative "shape checks": does our reproduction exhibit the
//! behaviours the paper reports?
//!
//! Absolute numbers cannot match (the authors' RNG is unknown), so
//! EXPERIMENTS.md compares *shapes*: which heuristic achieves the lowest
//! periods, which the lowest latencies, how the hierarchy flips between
//! `p = 10` and `p = 100`. Each check returns a measured verdict that the
//! figure binaries print next to the paper's claim.

use crate::sweep::FamilyResult;
use pipeline_core::HeuristicKind;

/// One measured observation paired with the paper's claim.
#[derive(Debug, Clone)]
pub struct ShapeCheck {
    /// Short identifier.
    pub name: &'static str,
    /// What the paper reports.
    pub paper: &'static str,
    /// What we measured.
    pub measured: String,
    /// Whether the measurement agrees with the claim.
    pub agrees: bool,
}

/// Mean latency of a series over the period-grid points where *all* six
/// heuristics were feasible for every instance, enabling apples-to-apples
/// comparison. Falls back to the series' own feasible points.
fn mean_curve_latency(fam: &FamilyResult, kind: HeuristicKind) -> Option<f64> {
    let s = fam.series.iter().find(|s| s.kind == kind)?;
    let ys: Vec<f64> = s.points.iter().map(|p| p.y(kind)).collect();
    if ys.is_empty() {
        return None;
    }
    Some(ys.iter().sum::<f64>() / ys.len() as f64)
}

/// Smallest period a heuristic's curve reaches (x of its leftmost point).
fn min_curve_period(fam: &FamilyResult, kind: HeuristicKind) -> Option<f64> {
    let s = fam.series.iter().find(|s| s.kind == kind)?;
    s.points
        .iter()
        .map(|p| p.x(kind))
        .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.min(x))))
}

/// Checks for the `p = 10` families (paper §5.2.1).
pub fn checks_p10(fam: &FamilyResult) -> Vec<ShapeCheck> {
    let mut out = Vec::new();

    // "Sp mono P and Sp mono L achieve the best period."
    if let (Some(h1), Some(h2)) = (
        min_curve_period(fam, HeuristicKind::SpMonoP),
        min_curve_period(fam, HeuristicKind::ThreeExploMono),
    ) {
        out.push(ShapeCheck {
            name: "sp-mono-p-best-period",
            paper: "Sp mono P reaches smaller periods than 3-Explo mono",
            measured: format!("min period: Sp mono P {h1:.3} vs 3-Explo mono {h2:.3}"),
            agrees: h1 <= h2 + 1e-9,
        });
    }

    // "Sp bi P minimizes the latency" — its curve should sit at or below
    // the mono splitting curve on latency.
    if let (Some(l_bi), Some(l_mono)) = (
        mean_curve_latency(fam, HeuristicKind::SpBiP),
        mean_curve_latency(fam, HeuristicKind::SpMonoP),
    ) {
        out.push(ShapeCheck {
            name: "sp-bi-p-low-latency",
            paper: "Sp bi P achieves by far the best latency times",
            measured: format!("mean curve latency: Sp bi P {l_bi:.3} vs Sp mono P {l_mono:.3}"),
            agrees: l_bi <= l_mono * 1.05,
        });
    }

    // "3-Explo mono cannot keep up with the other heuristics."
    if let (Some(l_explo), Some(l_mono)) = (
        mean_curve_latency(fam, HeuristicKind::ThreeExploMono),
        mean_curve_latency(fam, HeuristicKind::SpMonoP),
    ) {
        out.push(ShapeCheck {
            name: "explo-mono-trails",
            paper: "3-Explo mono trails the splitting heuristics (p = 10)",
            measured: format!(
                "mean curve latency: 3-Explo mono {l_explo:.3} vs Sp mono P {l_mono:.3}"
            ),
            agrees: l_explo >= l_mono * 0.95,
        });
    }

    out
}

/// Checks for the `p = 100` families (paper §5.2.2): bi-criteria
/// heuristics catch up or win.
pub fn checks_p100(fam: &FamilyResult) -> Vec<ShapeCheck> {
    let mut out = Vec::new();
    if let (Some(l_bi), Some(l_mono)) = (
        mean_curve_latency(fam, HeuristicKind::SpBiL),
        mean_curve_latency(fam, HeuristicKind::SpMonoL),
    ) {
        // For latency-fixed heuristics the y means are targets; compare
        // achieved periods instead.
        let p_bi = fam
            .series
            .iter()
            .find(|s| s.kind == HeuristicKind::SpBiL)
            .and_then(|s| s.points.last())
            .map(|p| p.mean_period);
        let p_mono = fam
            .series
            .iter()
            .find(|s| s.kind == HeuristicKind::SpMonoL)
            .and_then(|s| s.points.last())
            .map(|p| p.mean_period);
        if let (Some(pb), Some(pm)) = (p_bi, p_mono) {
            out.push(ShapeCheck {
                name: "bi-l-competitive-p100",
                paper: "with p = 100, Sp bi L outperforms (or matches) its mono counterpart",
                measured: format!(
                    "achieved period at loosest latency: bi {pb:.3} vs mono {pm:.3} \
                     (targets {l_bi:.3}/{l_mono:.3})"
                ),
                agrees: pb <= pm * 1.1,
            });
        }
    }
    out
}

/// Renders checks as aligned text.
pub fn render_checks(checks: &[ShapeCheck]) -> String {
    let mut out = String::new();
    for c in checks {
        out.push_str(&format!(
            "  [{}] {}\n        paper: {}\n        ours : {}\n",
            if c.agrees { "OK " } else { "DIFF" },
            c.name,
            c.paper,
            c.measured
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::run_family;
    use pipeline_model::generator::{ExperimentKind, InstanceParams};

    #[test]
    fn checks_run_on_a_small_family() {
        let fam = run_family(
            InstanceParams::paper(ExperimentKind::E1, 10, 10),
            5,
            8,
            8,
            2,
        );
        let checks = checks_p10(&fam);
        assert!(!checks.is_empty());
        let rendered = render_checks(&checks);
        assert!(rendered.contains("paper:"));
        assert!(rendered.contains("ours"));
    }

    #[test]
    fn p100_checks_have_content() {
        let fam = run_family(
            InstanceParams::paper(ExperimentKind::E1, 10, 30),
            5,
            6,
            6,
            2,
        );
        let checks = checks_p100(&fam);
        assert!(!checks.is_empty());
    }

    #[test]
    fn h1_reaches_lower_or_equal_periods_than_explo_on_e1() {
        // Statistical, but with 10 instances the paper's strongest claim
        // (H1 best threshold) holds robustly on E1.
        let fam = run_family(
            InstanceParams::paper(ExperimentKind::E1, 20, 10),
            9,
            10,
            8,
            2,
        );
        let checks = checks_p10(&fam);
        let c = checks
            .iter()
            .find(|c| c.name == "sp-mono-p-best-period")
            .unwrap();
        assert!(c.agrees, "{}", c.measured);
    }
}
