//! Latency-vs-period sweeps: the data behind every figure.
//!
//! For one instance family (experiment kind, `n`, `p`) and 50 seeded
//! instances:
//!
//! * the **period-fixed** heuristics (H1, H2a, H2b, H3) are swept over a
//!   grid of period targets; each grid point averages the achieved
//!   latency over the instances where the heuristic succeeded
//!   (x = target period, y = mean latency), exactly how the paper's
//!   curves are parameterized;
//! * the **latency-fixed** heuristics (H4, H5) are swept over a grid of
//!   latency targets; each point averages the achieved period
//!   (x = mean period, y = target latency).
//!
//! H1/H2a/H2b answer all period targets from one recorded trajectory per
//! instance (their split path is target-independent); H3/H4/H5 are re-run
//! per target.
//!
//! Beyond the paper families, [`run_scenario`] sweeps **any registered
//! scenario family** ([`pipeline_model::scenario`]): Communication
//! Homogeneous families get the six paper curves, fully heterogeneous
//! ones (`two-tier`, `comm-dominant`) get the §7 extension's curve
//! ([`HeuristicKind::HeteroSplit`]). Instances are generated and
//! evaluated *inside* the sharded work-queue engine ([`crate::shard`]) —
//! per-index RNG streams, chunked work stealing, and chunk-ordered
//! accumulator merges make the output bit-identical for every thread
//! count.

use crate::runner::InstanceEval;
use crate::shard::{sharded_fold, sharded_map_indices_with, ShardOptions, StatSums};
use pipeline_core::exact::exact_pareto_front_in;
use pipeline_core::service::SolveRequest;
use pipeline_core::{
    sp_bi_l_in, sp_bi_p_in, sp_mono_l_in, HeuristicKind, ParetoFront, SolveWorkspace, SpBiPOptions,
};
use pipeline_model::generator::InstanceParams;
use pipeline_model::scenario::{ScenarioGenerator, ScenarioParams};
use pipeline_model::util::linspace;

/// One averaged grid point of one heuristic's sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The constraint value handed to the heuristic (a period bound for
    /// period-fixed heuristics, a latency bound otherwise).
    pub target: f64,
    /// Mean achieved period over feasible instances.
    pub mean_period: f64,
    /// Mean achieved latency over feasible instances.
    pub mean_latency: f64,
    /// Instances where the heuristic met the constraint.
    pub n_feasible: usize,
    /// Instances attempted.
    pub n_total: usize,
}

impl SweepPoint {
    /// Plot x-coordinate: target period for period-fixed heuristics, mean
    /// achieved period otherwise.
    pub fn x(&self, kind: HeuristicKind) -> f64 {
        if kind.is_period_fixed() {
            self.target
        } else {
            self.mean_period
        }
    }

    /// Plot y-coordinate: mean achieved latency for period-fixed
    /// heuristics, target latency otherwise.
    pub fn y(&self, kind: HeuristicKind) -> f64 {
        if kind.is_period_fixed() {
            self.mean_latency
        } else {
            self.target
        }
    }
}

/// One heuristic's curve.
#[derive(Debug, Clone)]
pub struct HeuristicSeries {
    /// Which heuristic.
    pub kind: HeuristicKind,
    /// Grid points with at least one feasible instance.
    pub points: Vec<SweepPoint>,
}

impl HeuristicSeries {
    /// `(x, y)` pairs ready for plotting.
    pub fn xy(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.x(self.kind), p.y(self.kind)))
            .collect()
    }
}

/// How one heuristic's achieved front compares to the **exact** Pareto
/// front, averaged over a family's instances.
///
/// Per instance, the heuristic's feasible sweep outcomes form an
/// achieved front; it is scored against the exact front with the two
/// [`ParetoFront`] metrics, using the instance's own landmarks as the
/// reference point (`P_init × 1.02`, `L_opt × 3` — the same factors
/// that bound the sweep grids):
///
/// * **hypervolume ratio** — achieved hypervolume over exact
///   hypervolume, in `[0, 1]`; 1 means the heuristic recovers the whole
///   dominated region;
/// * **distance** — mean relative distance of the achieved points to
///   the exact front ([`ParetoFront::distance_to_front`]); 0 means
///   every achieved point is exact-optimal.
#[derive(Debug, Clone, Copy)]
pub struct FrontQuality {
    /// Which heuristic.
    pub kind: HeuristicKind,
    /// Mean achieved-over-exact hypervolume ratio.
    pub hypervolume_ratio: f64,
    /// Mean relative distance of achieved points to the exact front.
    pub distance: f64,
    /// Instances where the heuristic had at least one feasible point
    /// (the mean's denominator).
    pub n_scored: usize,
}

/// Scalar landmarks of a family, averaged over its instances.
#[derive(Debug, Clone, Copy)]
pub struct FamilyStats {
    /// Mean single-processor period.
    pub mean_p_init: f64,
    /// Mean optimal latency.
    pub mean_l_opt: f64,
    /// Mean best period floor across the trajectory heuristics.
    pub mean_best_floor: f64,
    /// Instances evaluated.
    pub n_instances: usize,
}

/// Result of sweeping one instance family.
#[derive(Debug, Clone)]
pub struct FamilyResult {
    /// One curve per applicable heuristic: the six of
    /// [`HeuristicKind::ALL`] (in that order) for Communication
    /// Homogeneous families, the single
    /// [`HeuristicKind::HeteroSplit`] curve otherwise.
    pub series: Vec<HeuristicSeries>,
    /// Solvers the sweep did **not** run because
    /// [`HeuristicKind::applicable_to`] rejects them on this family's
    /// platform class (the paper's six on fully heterogeneous
    /// platforms). Recorded so a 1-curve family summary is
    /// self-explanatory instead of silently thinner than a 6-curve one.
    pub skipped: Vec<HeuristicKind>,
    /// The family's landmarks.
    pub stats: FamilyStats,
    /// The period grid used for the period-fixed heuristics.
    pub period_grid: Vec<f64>,
    /// The latency grid used for the latency-fixed heuristics.
    pub latency_grid: Vec<f64>,
    /// Per-heuristic front-quality scores against the exact Pareto
    /// front (same order as [`Self::series`]). Empty when the family
    /// cannot be scored: heterogeneous platforms (no exact solver) or
    /// `n` above [`SolveRequest::DEFAULT_EXACT_CUTOFF`].
    pub quality: Vec<FrontQuality>,
}

/// Sweeps one of the paper's E1–E4 families. `n_instances` follows the
/// paper's 50; `n_grid` controls curve resolution; `threads` sizes the
/// sharded engine. Equivalent to [`run_scenario`] on the corresponding
/// registered family (identical instance streams).
pub fn run_family(
    params: InstanceParams,
    seed: u64,
    n_instances: usize,
    n_grid: usize,
    threads: usize,
) -> FamilyResult {
    // Route through the registry so every sweep exercises one engine;
    // the Paper config delegates to `InstanceGenerator`, keeping the
    // instance streams bit-identical to the pre-registry harness.
    let scenario = ScenarioParams {
        n_stages: params.n_stages,
        n_procs: params.n_procs,
        config: pipeline_model::scenario::FamilyConfig::Paper {
            kind: params.kind,
            bandwidth: params.bandwidth,
            speed_range: params.speed_range,
        },
    };
    run_scenario(&scenario, seed, n_instances, n_grid, threads)
}

/// Sweeps **any registered scenario family** with the sharded engine.
///
/// Instances are generated inside worker shards from their per-index RNG
/// streams (`gen.instance(seed, i)`), evaluated, and aggregated with
/// chunk-ordered mergeable accumulators — so the result is bit-identical
/// for every `threads` value (the serial run is `threads == 1`).
pub fn run_scenario(
    params: &ScenarioParams,
    seed: u64,
    n_instances: usize,
    n_grid: usize,
    threads: usize,
) -> FamilyResult {
    assert!(n_instances > 0 && n_grid >= 2);
    let gen = ScenarioGenerator::new(*params);
    let opts = ShardOptions::with_threads(threads);
    // One SolveWorkspace per worker shard: every instance evaluation in
    // a shard reuses the same solver scratch (trajectory recording, H4's
    // ~30 probe runs), so the steady-state per-item cost is compute, not
    // allocation.
    let evals: Vec<InstanceEval> =
        sharded_map_indices_with(n_instances, opts, SolveWorkspace::new, |ws, i| {
            let (app, pf) = gen.instance(seed, i as u64);
            InstanceEval::new_in(app, pf, ws)
        });

    // Landmark means via the engine's mergeable accumulator (chunk-order
    // merge keeps the floating-point sums reproducible).
    let sums = sharded_fold(n_instances, opts, |range| {
        let mut acc = StatSums::default();
        for e in &evals[range] {
            acc.absorb(e.p_init(), e.l_opt(), e.best_floor());
        }
        acc
    })
    .expect("n_instances > 0");
    let mean_p_init = sums.p_init / sums.count as f64;
    let mean_l_opt = sums.l_opt / sums.count as f64;
    let mean_best_floor = sums.best_floor / sums.count as f64;

    // Grids mirroring the paper's plot ranges: periods from just under
    // the best average floor up to the average initial period; latencies
    // from the average optimum to 3× it.
    let period_grid = linspace(mean_best_floor * 0.9, mean_p_init * 1.02, n_grid);
    let latency_grid = linspace(mean_l_opt, mean_l_opt * 3.0, n_grid);

    // Period-fixed heuristics answered from trajectories (H1, H2a, H2b —
    // or the §7 extension on heterogeneous platforms) or re-run per
    // target (H3). Parallelism is over instances already exploited
    // above; the sweep itself is cheap except H3/H5/H6, which
    // re-parallelize over instances.
    let comm_homogeneous = params.family().comm_homogeneous();
    let kinds: &[HeuristicKind] = if comm_homogeneous {
        &HeuristicKind::ALL
    } else {
        &[HeuristicKind::HeteroSplit]
    };
    // `applicable_to` rejections, recorded rather than silently dropped:
    // hetero families run only the §7 extension.
    let skipped: Vec<HeuristicKind> = if comm_homogeneous {
        Vec::new()
    } else {
        HeuristicKind::ALL.to_vec()
    };
    let mut series = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let points = match kind {
            HeuristicKind::SpMonoP
            | HeuristicKind::ThreeExploMono
            | HeuristicKind::ThreeExploBi
            | HeuristicKind::HeteroSplit => sweep_trajectory(kind, &evals, &period_grid),
            HeuristicKind::SpBiP => sweep_sp_bi_p(&evals, &period_grid, threads),
            HeuristicKind::SpMonoL | HeuristicKind::SpBiL => {
                sweep_latency_fixed(kind, &evals, &latency_grid, threads)
            }
        };
        series.push(HeuristicSeries { kind, points });
    }

    // Exact ground-truth scoring: only where the exact solver is both
    // applicable (Communication Homogeneous) and interactive (n at most
    // the Auto-routing cutoff — with the v3 dominance DP that covers
    // every family the paper plots).
    let quality = if comm_homogeneous && params.n_stages <= SolveRequest::DEFAULT_EXACT_CUTOFF {
        score_front_quality(kinds, &evals, &period_grid, &latency_grid, threads)
    } else {
        Vec::new()
    };

    FamilyResult {
        series,
        skipped,
        stats: FamilyStats {
            mean_p_init,
            mean_l_opt,
            mean_best_floor,
            n_instances: evals.len(),
        },
        period_grid,
        latency_grid,
        quality,
    }
}

/// One heuristic outcome at one target, the same dispatch the sweeps
/// use: trajectory heuristics answer from their recorded trajectory,
/// H4/H5/H6 re-run.
fn heuristic_outcome(
    e: &InstanceEval,
    kind: HeuristicKind,
    target: f64,
    ws: &mut SolveWorkspace,
) -> (bool, f64, f64) {
    match kind {
        HeuristicKind::SpMonoP
        | HeuristicKind::ThreeExploMono
        | HeuristicKind::ThreeExploBi
        | HeuristicKind::HeteroSplit => {
            let hit = e
                .cached_trajectory(kind)
                .expect("trajectory recorded for this platform class")
                .lookup(target);
            (hit.feasible, hit.period, hit.latency)
        }
        HeuristicKind::SpBiP => {
            let r = sp_bi_p_in(&e.cost_model(), target, SpBiPOptions::default(), ws);
            (r.feasible, r.period, r.latency)
        }
        HeuristicKind::SpMonoL => {
            let r = sp_mono_l_in(&e.cost_model(), target, ws);
            (r.feasible, r.period, r.latency)
        }
        HeuristicKind::SpBiL => {
            let r = sp_bi_l_in(&e.cost_model(), target, ws);
            (r.feasible, r.period, r.latency)
        }
    }
}

/// Scores every heuristic's achieved front against the exact Pareto
/// front of each instance (see [`FrontQuality`]). The per-instance work
/// — one exact front plus one sweep replay per heuristic — runs inside
/// the sharded engine; the shard merge returns scores in instance
/// order, so the final means are bit-identical for every thread count.
fn score_front_quality(
    kinds: &[HeuristicKind],
    evals: &[InstanceEval],
    period_grid: &[f64],
    latency_grid: &[f64],
    threads: usize,
) -> Vec<FrontQuality> {
    let opts = ShardOptions::with_threads(threads);
    // Per instance: for each heuristic, `Some((hv_ratio, mean_dist))`
    // when it produced at least one feasible point, `None` otherwise.
    let per_instance: Vec<Vec<Option<(f64, f64)>>> =
        sharded_map_indices_with(evals.len(), opts, SolveWorkspace::new, |ws, i| {
            let e = &evals[i];
            let exact = exact_pareto_front_in(&e.cost_model(), ws);
            // Reference point from the instance's own landmarks, with
            // the same slack factors that bound the sweep grids.
            let (ref_p, ref_l) = (e.p_init() * 1.02, e.l_opt() * 3.0);
            let exact_hv = exact.hypervolume(ref_p, ref_l);
            kinds
                .iter()
                .map(|&kind| {
                    let grid = if kind.is_period_fixed() {
                        period_grid
                    } else {
                        latency_grid
                    };
                    let mut achieved: ParetoFront<()> = ParetoFront::new();
                    for &target in grid {
                        let (feasible, period, latency) = heuristic_outcome(e, kind, target, ws);
                        if feasible {
                            achieved.offer(period, latency, ());
                        }
                    }
                    if achieved.is_empty() || exact_hv <= 0.0 {
                        return None;
                    }
                    let hv_ratio = achieved.hypervolume(ref_p, ref_l) / exact_hv;
                    let dist_sum: f64 = achieved
                        .iter()
                        .map(|(p, l, ())| {
                            exact
                                .distance_to_front(p, l)
                                .expect("exact front is non-empty")
                        })
                        .sum();
                    Some((hv_ratio, dist_sum / achieved.len() as f64))
                })
                .collect()
        });
    kinds
        .iter()
        .enumerate()
        .map(|(k, &kind)| {
            let mut hv_sum = 0.0;
            let mut dist_sum = 0.0;
            let mut n_scored = 0usize;
            for scores in &per_instance {
                if let Some((hv, dist)) = scores[k] {
                    hv_sum += hv;
                    dist_sum += dist;
                    n_scored += 1;
                }
            }
            FrontQuality {
                kind,
                hypervolume_ratio: if n_scored > 0 {
                    hv_sum / n_scored as f64
                } else {
                    0.0
                },
                distance: if n_scored > 0 {
                    dist_sum / n_scored as f64
                } else {
                    0.0
                },
                n_scored,
            }
        })
        .collect()
}

/// Single-pass mean aggregation over per-instance `(feasible, period,
/// latency)` outcomes. Sums accumulate in instance order — the exact
/// association `util::mean` applied to the collected vectors, without
/// the vectors.
#[derive(Default)]
struct PointAccumulator {
    period_sum: f64,
    latency_sum: f64,
    n_feasible: usize,
    n_total: usize,
}

impl PointAccumulator {
    fn absorb(&mut self, feasible: bool, period: f64, latency: f64) {
        self.n_total += 1;
        if feasible {
            self.period_sum += period;
            self.latency_sum += latency;
            self.n_feasible += 1;
        }
    }

    fn finish(self, target: f64) -> Option<SweepPoint> {
        (self.n_feasible > 0).then(|| SweepPoint {
            target,
            mean_period: self.period_sum / self.n_feasible as f64,
            mean_latency: self.latency_sum / self.n_feasible as f64,
            n_feasible: self.n_feasible,
            n_total: self.n_total,
        })
    }
}

fn sweep_trajectory(kind: HeuristicKind, evals: &[InstanceEval], grid: &[f64]) -> Vec<SweepPoint> {
    grid.iter()
        .filter_map(|&target| {
            let mut acc = PointAccumulator::default();
            for e in evals {
                // Coordinate-only query: no mapping is materialized for
                // any of the grid × instance lookups.
                let hit = e
                    .cached_trajectory(kind)
                    .expect("trajectory recorded for this platform class")
                    .lookup(target);
                acc.absorb(hit.feasible, hit.period, hit.latency);
            }
            acc.finish(target)
        })
        .collect()
}

fn sweep_sp_bi_p(evals: &[InstanceEval], grid: &[f64], threads: usize) -> Vec<SweepPoint> {
    // Each instance × target is an independent binary search; parallelize
    // over instances (the outer loop is the grid to keep aggregation
    // simple).
    let opts = ShardOptions::with_threads(threads);
    grid.iter()
        .filter_map(|&target| {
            let outcomes: Vec<(bool, f64, f64)> =
                sharded_map_indices_with(evals.len(), opts, SolveWorkspace::new, |ws, i| {
                    let cm = evals[i].cost_model();
                    let r = sp_bi_p_in(&cm, target, SpBiPOptions::default(), ws);
                    (r.feasible, r.period, r.latency)
                });
            let mut acc = PointAccumulator::default();
            for (ok, p, l) in outcomes {
                acc.absorb(ok, p, l);
            }
            acc.finish(target)
        })
        .collect()
}

fn sweep_latency_fixed(
    kind: HeuristicKind,
    evals: &[InstanceEval],
    grid: &[f64],
    threads: usize,
) -> Vec<SweepPoint> {
    let opts = ShardOptions::with_threads(threads);
    grid.iter()
        .filter_map(|&target| {
            let outcomes: Vec<(bool, f64, f64)> =
                sharded_map_indices_with(evals.len(), opts, SolveWorkspace::new, |ws, i| {
                    let cm = evals[i].cost_model();
                    let r = match kind {
                        HeuristicKind::SpMonoL => sp_mono_l_in(&cm, target, ws),
                        HeuristicKind::SpBiL => sp_bi_l_in(&cm, target, ws),
                        _ => unreachable!("not a latency-fixed heuristic"),
                    };
                    (r.feasible, r.period, r.latency)
                });
            let mut acc = PointAccumulator::default();
            for (ok, p, l) in outcomes {
                acc.absorb(ok, p, l);
            }
            acc.finish(target)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline_model::generator::ExperimentKind;

    fn tiny_family() -> FamilyResult {
        run_family(InstanceParams::paper(ExperimentKind::E1, 8, 10), 7, 6, 8, 2)
    }

    #[test]
    fn family_produces_six_series() {
        let fam = tiny_family();
        assert_eq!(fam.series.len(), 6);
        let kinds: Vec<HeuristicKind> = fam.series.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, HeuristicKind::ALL.to_vec());
        assert_eq!(fam.stats.n_instances, 6);
        assert!(fam.stats.mean_best_floor <= fam.stats.mean_p_init);
    }

    #[test]
    fn latency_fixed_series_cover_the_whole_grid() {
        // Targets ≥ L_opt are always feasible for H5/H6; the grid starts
        // at mean L_opt so instances with below-average L_opt may fail at
        // the first point, but the upper grid must be complete.
        let fam = tiny_family();
        for s in &fam.series {
            if !s.kind.is_period_fixed() {
                let last = s.points.last().expect("non-empty");
                assert_eq!(last.n_feasible, last.n_total, "{}", s.kind);
            }
        }
    }

    #[test]
    fn period_fixed_latency_decreases_with_looser_targets() {
        // Looser period targets need fewer splits → lower latency (exact
        // for trajectory heuristics on each instance, hence for means over
        // a fixed feasible set; across different feasible sets small
        // inversions are possible, so check the trend loosely).
        let fam = tiny_family();
        let h1 = &fam.series[0];
        assert!(h1.points.len() >= 2);
        let first_full = h1.points.iter().find(|p| p.n_feasible == p.n_total);
        let last = h1.points.last().unwrap();
        if let Some(f) = first_full {
            assert!(
                last.mean_latency <= f.mean_latency + 1e-9,
                "loosest target must not have higher latency than the tightest fully-feasible one"
            );
        }
    }

    #[test]
    fn xy_orientation_per_heuristic_class() {
        let fam = tiny_family();
        for s in &fam.series {
            for (pt, (x, y)) in s.points.iter().zip(s.xy()) {
                if s.kind.is_period_fixed() {
                    assert_eq!(x, pt.target);
                    assert_eq!(y, pt.mean_latency);
                } else {
                    assert_eq!(x, pt.mean_period);
                    assert_eq!(y, pt.target);
                }
            }
        }
    }

    #[test]
    fn scenario_sweep_covers_every_registered_family() {
        use pipeline_model::scenario::ScenarioFamily;
        for family in ScenarioFamily::ALL {
            // Heterogeneous families are costlier per split; keep tiny.
            let params = family.params(6, 5);
            let fam = run_scenario(&params, 11, 3, 5, 2);
            assert_eq!(fam.stats.n_instances, 3, "{family}");
            if family.comm_homogeneous() {
                assert_eq!(fam.series.len(), 6, "{family}");
                assert!(fam.skipped.is_empty(), "{family}: nothing is rejected");
            } else {
                assert_eq!(fam.series.len(), 1, "{family}");
                assert_eq!(fam.series[0].kind, HeuristicKind::HeteroSplit);
                // The six paper heuristics are applicable_to-rejected on
                // fully heterogeneous platforms, and the sweep says so.
                assert_eq!(fam.skipped, HeuristicKind::ALL.to_vec(), "{family}");
                let platform = ScenarioGenerator::new(params).instance(11, 0).1;
                for kind in &fam.skipped {
                    assert!(!kind.applicable_to(&platform), "{family}: {kind}");
                }
            }
            // Every family must produce at least one feasible point on
            // its loosest period target.
            let first = &fam.series[0];
            let last = first.points.last().expect("non-empty series");
            assert!(last.n_feasible > 0, "{family}: no feasible point");
            assert!(fam.stats.mean_best_floor <= fam.stats.mean_p_init + 1e-9);
        }
    }

    #[test]
    fn paper_family_routes_through_the_registry_unchanged() {
        // run_family == run_scenario on the registered paper family.
        let params = InstanceParams::paper(ExperimentKind::E3, 7, 6);
        let a = run_family(params, 5, 4, 6, 1);
        let b = run_scenario(
            &pipeline_model::scenario::ScenarioFamily::E3.params(7, 6),
            5,
            4,
            6,
            1,
        );
        assert_eq!(a.period_grid, b.period_grid);
        for (sa, sb) in a.series.iter().zip(&b.series) {
            assert_eq!(sa.kind, sb.kind);
            assert_eq!(sa.xy(), sb.xy());
        }
    }

    #[test]
    fn quality_scores_are_sane_and_deterministic() {
        // n = 8 ≤ the exact cutoff on a comm-homogeneous family: every
        // heuristic gets scored against the exact front.
        let fam = tiny_family();
        assert_eq!(fam.quality.len(), 6);
        for q in &fam.quality {
            assert!(q.n_scored > 0, "{}: never scored", q.kind);
            assert!(
                (0.0..=1.0 + 1e-9).contains(&q.hypervolume_ratio),
                "{}: hv ratio {} outside [0, 1]",
                q.kind,
                q.hypervolume_ratio
            );
            assert!(q.distance >= 0.0, "{}", q.kind);
        }
        // Bit-identical across thread counts (exact fronts + instance-order
        // score merges are both deterministic).
        let again = run_family(InstanceParams::paper(ExperimentKind::E1, 8, 10), 7, 6, 8, 4);
        for (a, b) in fam.quality.iter().zip(&again.quality) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.hypervolume_ratio.to_bits(), b.hypervolume_ratio.to_bits());
            assert_eq!(a.distance.to_bits(), b.distance.to_bits());
            assert_eq!(a.n_scored, b.n_scored);
        }
    }

    #[test]
    fn quality_skipped_above_cutoff_and_on_hetero_platforms() {
        use pipeline_core::service::SolveRequest;
        use pipeline_model::scenario::ScenarioFamily;
        let big = ScenarioFamily::E1.params(SolveRequest::DEFAULT_EXACT_CUTOFF + 1, 4);
        assert!(run_scenario(&big, 3, 2, 4, 1).quality.is_empty());
        let hetero = ScenarioFamily::TwoTier.params(6, 5);
        assert!(run_scenario(&hetero, 3, 2, 4, 1).quality.is_empty());
    }

    #[test]
    fn feasible_counts_monotone_for_trajectory_heuristics() {
        // A larger period target can only gain feasible instances.
        let fam = tiny_family();
        for s in &fam.series[..3] {
            let mut last = 0;
            for p in &s.points {
                assert!(p.n_feasible >= last, "{}: feasibility regressed", s.kind);
                last = p.n_feasible;
            }
        }
    }
}
