//! Latency-vs-period sweeps: the data behind every figure.
//!
//! For one instance family (experiment kind, `n`, `p`) and 50 seeded
//! instances:
//!
//! * the **period-fixed** heuristics (H1, H2a, H2b, H3) are swept over a
//!   grid of period targets; each grid point averages the achieved
//!   latency over the instances where the heuristic succeeded
//!   (x = target period, y = mean latency), exactly how the paper's
//!   curves are parameterized;
//! * the **latency-fixed** heuristics (H4, H5) are swept over a grid of
//!   latency targets; each point averages the achieved period
//!   (x = mean period, y = target latency).
//!
//! H1/H2a/H2b answer all period targets from one recorded trajectory per
//! instance (their split path is target-independent); H3/H4/H5 are re-run
//! per target.

use crate::runner::{parallel_map, InstanceEval};
use pipeline_core::{sp_bi_l, sp_bi_p, sp_mono_l, HeuristicKind, SpBiPOptions};
use pipeline_model::generator::{InstanceGenerator, InstanceParams};
use pipeline_model::util::{linspace, mean};

/// One averaged grid point of one heuristic's sweep.
#[derive(Debug, Clone, Copy)]
pub struct SweepPoint {
    /// The constraint value handed to the heuristic (a period bound for
    /// period-fixed heuristics, a latency bound otherwise).
    pub target: f64,
    /// Mean achieved period over feasible instances.
    pub mean_period: f64,
    /// Mean achieved latency over feasible instances.
    pub mean_latency: f64,
    /// Instances where the heuristic met the constraint.
    pub n_feasible: usize,
    /// Instances attempted.
    pub n_total: usize,
}

impl SweepPoint {
    /// Plot x-coordinate: target period for period-fixed heuristics, mean
    /// achieved period otherwise.
    pub fn x(&self, kind: HeuristicKind) -> f64 {
        if kind.is_period_fixed() {
            self.target
        } else {
            self.mean_period
        }
    }

    /// Plot y-coordinate: mean achieved latency for period-fixed
    /// heuristics, target latency otherwise.
    pub fn y(&self, kind: HeuristicKind) -> f64 {
        if kind.is_period_fixed() {
            self.mean_latency
        } else {
            self.target
        }
    }
}

/// One heuristic's curve.
#[derive(Debug, Clone)]
pub struct HeuristicSeries {
    /// Which heuristic.
    pub kind: HeuristicKind,
    /// Grid points with at least one feasible instance.
    pub points: Vec<SweepPoint>,
}

impl HeuristicSeries {
    /// `(x, y)` pairs ready for plotting.
    pub fn xy(&self) -> Vec<(f64, f64)> {
        self.points
            .iter()
            .map(|p| (p.x(self.kind), p.y(self.kind)))
            .collect()
    }
}

/// Scalar landmarks of a family, averaged over its instances.
#[derive(Debug, Clone, Copy)]
pub struct FamilyStats {
    /// Mean single-processor period.
    pub mean_p_init: f64,
    /// Mean optimal latency.
    pub mean_l_opt: f64,
    /// Mean best period floor across the trajectory heuristics.
    pub mean_best_floor: f64,
    /// Instances evaluated.
    pub n_instances: usize,
}

/// Result of sweeping one instance family.
#[derive(Debug, Clone)]
pub struct FamilyResult {
    /// Six curves in [`HeuristicKind::ALL`] order.
    pub series: Vec<HeuristicSeries>,
    /// The family's landmarks.
    pub stats: FamilyStats,
    /// The period grid used for the period-fixed heuristics.
    pub period_grid: Vec<f64>,
    /// The latency grid used for the latency-fixed heuristics.
    pub latency_grid: Vec<f64>,
}

/// Sweeps one family. `n_instances` follows the paper's 50; `n_grid`
/// controls curve resolution; `threads` parallelizes over instances.
pub fn run_family(
    params: InstanceParams,
    seed: u64,
    n_instances: usize,
    n_grid: usize,
    threads: usize,
) -> FamilyResult {
    assert!(n_instances > 0 && n_grid >= 2);
    let gen = InstanceGenerator::new(params);
    let instances = gen.batch(seed, n_instances);
    let evals: Vec<InstanceEval> =
        parallel_map(instances, threads, |(app, pf)| InstanceEval::new(app, pf));

    let mean_p_init = mean(&evals.iter().map(|e| e.p_init).collect::<Vec<_>>()).expect("n>0");
    let mean_l_opt = mean(&evals.iter().map(|e| e.l_opt).collect::<Vec<_>>()).expect("n>0");
    let mean_best_floor =
        mean(&evals.iter().map(|e| e.best_floor()).collect::<Vec<_>>()).expect("n>0");

    // Grids mirroring the paper's plot ranges: periods from just under
    // the best average floor up to the average initial period; latencies
    // from the average optimum to 3× it.
    let period_grid = linspace(mean_best_floor * 0.9, mean_p_init * 1.02, n_grid);
    let latency_grid = linspace(mean_l_opt, mean_l_opt * 3.0, n_grid);

    // Period-fixed heuristics answered from trajectories (H1, H2a, H2b)
    // or re-run per target (H3). Parallelism is over instances already
    // exploited above; the sweep itself is cheap except H3, so
    // parallelize H3 over instances.
    let mut series = Vec::with_capacity(6);
    for kind in HeuristicKind::ALL {
        let points = match kind {
            HeuristicKind::SpMonoP
            | HeuristicKind::ThreeExploMono
            | HeuristicKind::ThreeExploBi => sweep_trajectory(kind, &evals, &period_grid),
            HeuristicKind::SpBiP => sweep_sp_bi_p(&evals, &period_grid, threads),
            HeuristicKind::SpMonoL | HeuristicKind::SpBiL => {
                sweep_latency_fixed(kind, &evals, &latency_grid, threads)
            }
        };
        series.push(HeuristicSeries { kind, points });
    }

    FamilyResult {
        series,
        stats: FamilyStats {
            mean_p_init,
            mean_l_opt,
            mean_best_floor,
            n_instances: evals.len(),
        },
        period_grid,
        latency_grid,
    }
}

fn aggregate(target: f64, outcomes: &[(bool, f64, f64)]) -> Option<SweepPoint> {
    let feas: Vec<&(bool, f64, f64)> = outcomes.iter().filter(|(ok, _, _)| *ok).collect();
    if feas.is_empty() {
        return None;
    }
    let periods: Vec<f64> = feas.iter().map(|(_, p, _)| *p).collect();
    let latencies: Vec<f64> = feas.iter().map(|(_, _, l)| *l).collect();
    Some(SweepPoint {
        target,
        mean_period: mean(&periods).expect("non-empty"),
        mean_latency: mean(&latencies).expect("non-empty"),
        n_feasible: feas.len(),
        n_total: outcomes.len(),
    })
}

fn sweep_trajectory(kind: HeuristicKind, evals: &[InstanceEval], grid: &[f64]) -> Vec<SweepPoint> {
    fn traj_of(kind: HeuristicKind, e: &InstanceEval) -> &pipeline_core::Trajectory {
        match kind {
            HeuristicKind::SpMonoP => &e.traj_split_mono,
            HeuristicKind::ThreeExploMono => &e.traj_explo_mono,
            HeuristicKind::ThreeExploBi => &e.traj_explo_bi,
            _ => unreachable!("not a trajectory heuristic"),
        }
    }
    grid.iter()
        .filter_map(|&target| {
            let outcomes: Vec<(bool, f64, f64)> = evals
                .iter()
                .map(|e| {
                    let r = traj_of(kind, e).result_for_period(target);
                    (r.feasible, r.period, r.latency)
                })
                .collect();
            aggregate(target, &outcomes)
        })
        .collect()
}

fn sweep_sp_bi_p(evals: &[InstanceEval], grid: &[f64], threads: usize) -> Vec<SweepPoint> {
    // Each instance × target is an independent binary search; parallelize
    // over instances (the outer loop is the grid to keep aggregation
    // simple).
    grid.iter()
        .filter_map(|&target| {
            let outcomes: Vec<(bool, f64, f64)> =
                parallel_map(evals.iter().collect::<Vec<_>>(), threads, |e| {
                    let cm = e.cost_model();
                    let r = sp_bi_p(&cm, target, SpBiPOptions::default());
                    (r.feasible, r.period, r.latency)
                });
            aggregate(target, &outcomes)
        })
        .collect()
}

fn sweep_latency_fixed(
    kind: HeuristicKind,
    evals: &[InstanceEval],
    grid: &[f64],
    threads: usize,
) -> Vec<SweepPoint> {
    grid.iter()
        .filter_map(|&target| {
            let outcomes: Vec<(bool, f64, f64)> =
                parallel_map(evals.iter().collect::<Vec<_>>(), threads, |e| {
                    let cm = e.cost_model();
                    let r = match kind {
                        HeuristicKind::SpMonoL => sp_mono_l(&cm, target),
                        HeuristicKind::SpBiL => sp_bi_l(&cm, target),
                        _ => unreachable!("not a latency-fixed heuristic"),
                    };
                    (r.feasible, r.period, r.latency)
                });
            aggregate(target, &outcomes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline_model::generator::ExperimentKind;

    fn tiny_family() -> FamilyResult {
        run_family(InstanceParams::paper(ExperimentKind::E1, 8, 10), 7, 6, 8, 2)
    }

    #[test]
    fn family_produces_six_series() {
        let fam = tiny_family();
        assert_eq!(fam.series.len(), 6);
        let kinds: Vec<HeuristicKind> = fam.series.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, HeuristicKind::ALL.to_vec());
        assert_eq!(fam.stats.n_instances, 6);
        assert!(fam.stats.mean_best_floor <= fam.stats.mean_p_init);
    }

    #[test]
    fn latency_fixed_series_cover_the_whole_grid() {
        // Targets ≥ L_opt are always feasible for H5/H6; the grid starts
        // at mean L_opt so instances with below-average L_opt may fail at
        // the first point, but the upper grid must be complete.
        let fam = tiny_family();
        for s in &fam.series {
            if !s.kind.is_period_fixed() {
                let last = s.points.last().expect("non-empty");
                assert_eq!(last.n_feasible, last.n_total, "{}", s.kind);
            }
        }
    }

    #[test]
    fn period_fixed_latency_decreases_with_looser_targets() {
        // Looser period targets need fewer splits → lower latency (exact
        // for trajectory heuristics on each instance, hence for means over
        // a fixed feasible set; across different feasible sets small
        // inversions are possible, so check the trend loosely).
        let fam = tiny_family();
        let h1 = &fam.series[0];
        assert!(h1.points.len() >= 2);
        let first_full = h1.points.iter().find(|p| p.n_feasible == p.n_total);
        let last = h1.points.last().unwrap();
        if let Some(f) = first_full {
            assert!(
                last.mean_latency <= f.mean_latency + 1e-9,
                "loosest target must not have higher latency than the tightest fully-feasible one"
            );
        }
    }

    #[test]
    fn xy_orientation_per_heuristic_class() {
        let fam = tiny_family();
        for s in &fam.series {
            for (pt, (x, y)) in s.points.iter().zip(s.xy()) {
                if s.kind.is_period_fixed() {
                    assert_eq!(x, pt.target);
                    assert_eq!(y, pt.mean_latency);
                } else {
                    assert_eq!(x, pt.mean_period);
                    assert_eq!(y, pt.target);
                }
            }
        }
    }

    #[test]
    fn feasible_counts_monotone_for_trajectory_heuristics() {
        // A larger period target can only gain feasible instances.
        let fam = tiny_family();
        for s in &fam.series[..3] {
            let mut last = 0;
            for p in &s.points {
                assert!(p.n_feasible >= last, "{}: feasibility regressed", s.kind);
                last = p.n_feasible;
            }
        }
    }
}
