//! Loaded-latency study (extension beyond the paper's evaluation).
//!
//! The paper defines latency as "the maximum response time over all data
//! sets" but evaluates eq. 2, which is the *unloaded* response time —
//! exact when the input is throttled at the period, optimistic under
//! saturation where queueing in front of the bottleneck inflates early
//! responses. The discrete-event simulator quantifies that gap per
//! heuristic: mappings that spread cycle times evenly queue less than
//! mappings with one dominant bottleneck, even at identical periods.

use crate::shard::{sharded_map_items, ShardOptions};
use pipeline_core::HeuristicKind;
use pipeline_model::generator::{InstanceGenerator, InstanceParams};
use pipeline_model::prelude::*;
use pipeline_model::util::mean;
use pipeline_sim::{InputPolicy, PipelineSim, SimConfig};

/// Loaded-vs-analytic latency of one heuristic on one instance family.
#[derive(Debug, Clone)]
pub struct LoadedLatencyRow {
    /// The heuristic.
    pub kind: HeuristicKind,
    /// Mean analytic (eq. 2) latency over feasible instances.
    pub mean_analytic: f64,
    /// Mean simulated max response time under *saturating* input.
    pub mean_loaded: f64,
    /// Mean simulated max response time with input throttled at the
    /// period (sanity: must equal the analytic value).
    pub mean_throttled: f64,
    /// Instances where the heuristic met the target.
    pub n_feasible: usize,
}

impl LoadedLatencyRow {
    /// Loaded inflation factor `loaded / analytic`.
    pub fn inflation(&self) -> f64 {
        self.mean_loaded / self.mean_analytic
    }
}

/// Measures loaded latency for every heuristic on one family.
///
/// `target_factor` positions the period target (fraction of the mean
/// single-processor period); latency-fixed heuristics get a latency
/// budget of twice their optimum.
pub fn loaded_latency_study(
    params: InstanceParams,
    seed: u64,
    n_instances: usize,
    target_factor: f64,
    datasets: usize,
    threads: usize,
) -> Vec<LoadedLatencyRow> {
    let gen = InstanceGenerator::new(params);
    let instances = gen.batch(seed, n_instances);
    let opts = ShardOptions::with_threads(threads);
    let per_instance = sharded_map_items(instances, opts, |(app, pf)| {
        let cm = CostModel::new(&app, &pf);
        let p0 = cm.single_proc_period();
        let l0 = cm.optimal_latency();
        let mut rows = Vec::with_capacity(6);
        for kind in HeuristicKind::ALL {
            let target = if kind.is_period_fixed() {
                target_factor * p0
            } else {
                2.0 * l0
            };
            let res = kind.run(&cm, target);
            if !res.feasible {
                rows.push(None);
                continue;
            }
            let saturated = PipelineSim::new(&cm, &res.mapping, SimConfig::default()).run(datasets);
            let throttled = PipelineSim::new(
                &cm,
                &res.mapping,
                SimConfig {
                    input: InputPolicy::Periodic(res.period),
                    record_trace: false,
                },
            )
            .run(datasets);
            rows.push(Some((
                res.latency,
                saturated.report.max_latency(),
                throttled.report.max_latency(),
            )));
        }
        rows
    });

    HeuristicKind::ALL
        .into_iter()
        .enumerate()
        .map(|(h, kind)| {
            let vals: Vec<(f64, f64, f64)> =
                per_instance.iter().filter_map(|rows| rows[h]).collect();
            let col = |f: fn(&(f64, f64, f64)) -> f64| {
                mean(&vals.iter().map(f).collect::<Vec<_>>()).unwrap_or(f64::NAN)
            };
            LoadedLatencyRow {
                kind,
                mean_analytic: col(|v| v.0),
                mean_loaded: col(|v| v.1),
                mean_throttled: col(|v| v.2),
                n_feasible: vals.len(),
            }
        })
        .collect()
}

/// Renders the study as an aligned table.
pub fn render_loaded(rows: &[LoadedLatencyRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>6} {:>10} {:>10} {:>10} {:>9}\n",
        "heuristic", "feas", "analytic", "throttled", "loaded", "inflation"
    ));
    for r in rows {
        if r.n_feasible == 0 {
            out.push_str(&format!(
                "{:<16} {:>6} (no feasible instance)\n",
                r.kind.label(),
                0
            ));
            continue;
        }
        out.push_str(&format!(
            "{:<16} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>8.1}%\n",
            r.kind.label(),
            r.n_feasible,
            r.mean_analytic,
            r.mean_throttled,
            r.mean_loaded,
            100.0 * (r.inflation() - 1.0)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline_model::generator::ExperimentKind;

    #[test]
    fn throttled_latency_equals_analytic_and_loaded_dominates() {
        let rows = loaded_latency_study(
            InstanceParams::paper(ExperimentKind::E1, 10, 10),
            5,
            6,
            0.6,
            30,
            2,
        );
        assert_eq!(rows.len(), 6);
        for r in &rows {
            if r.n_feasible == 0 {
                continue;
            }
            assert!(
                (r.mean_throttled - r.mean_analytic).abs() < 1e-6 * r.mean_analytic,
                "{}: throttled {} != analytic {}",
                r.kind,
                r.mean_throttled,
                r.mean_analytic
            );
            assert!(
                r.mean_loaded >= r.mean_analytic - 1e-9,
                "{}: loaded latency below the analytic bound",
                r.kind
            );
            assert!(r.inflation() >= 1.0 - 1e-12);
        }
    }

    #[test]
    fn render_has_one_line_per_heuristic() {
        let rows = loaded_latency_study(
            InstanceParams::paper(ExperimentKind::E4, 8, 10),
            7,
            4,
            0.7,
            20,
            2,
        );
        let s = render_loaded(&rows);
        assert_eq!(s.lines().count(), 7); // header + 6 rows
        assert!(s.contains("inflation"));
    }
}
