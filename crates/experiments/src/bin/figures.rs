//! Regenerates the paper's figures 2–7: latency-vs-period curves for the
//! six heuristics, averaged over 50 random instances per family.
//!
//! ```text
//! figures [--fig N|all] [--instances K] [--grid G] [--seed S]
//!         [--threads T] [--out DIR]
//! ```
//!
//! Writes one CSV per sub-figure into `DIR` (default `results/`) and
//! prints an ASCII rendition plus the paper-shape checks.

use pipeline_experiments::ascii::Chart;
use pipeline_experiments::config::figures_of;
use pipeline_experiments::csvout::{fmt, write_csv};
use pipeline_experiments::summary::{checks_p10, checks_p100, render_checks};
use pipeline_experiments::sweep::run_family;
use std::path::PathBuf;

struct Args {
    figs: Vec<u32>,
    instances: usize,
    grid: usize,
    seed: u64,
    threads: usize,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        figs: (2..=7).collect(),
        instances: 50,
        grid: 20,
        seed: 2007,
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        out: PathBuf::from("results"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--fig" => {
                let v = value();
                if v != "all" {
                    args.figs = vec![v.parse().unwrap_or_else(|_| {
                        eprintln!("--fig wants a number 2..7 or 'all'");
                        std::process::exit(2);
                    })];
                }
            }
            "--instances" => args.instances = value().parse().expect("--instances N"),
            "--grid" => args.grid = value().parse().expect("--grid N"),
            "--seed" => args.seed = value().parse().expect("--seed N"),
            "--threads" => args.threads = value().parse().expect("--threads N"),
            "--out" => args.out = PathBuf::from(value()),
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [--fig N|all] [--instances K] [--grid G] \
                     [--seed S] [--threads T] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    println!(
        "Regenerating figures {:?} — {} instances/family, grid {}, seed {}",
        args.figs, args.instances, args.grid, args.seed
    );
    for fig_no in &args.figs {
        for spec in figures_of(*fig_no) {
            let t0 = std::time::Instant::now();
            let fam = run_family(
                spec.params(),
                args.seed,
                args.instances,
                args.grid,
                args.threads,
            );
            println!(
                "\n=== {} — {} [{:.1}s] ===",
                spec.id,
                spec.caption,
                t0.elapsed().as_secs_f64()
            );
            println!(
                "    landmarks: mean P_init {:.3}, mean L_opt {:.3}, mean best floor {:.3}",
                fam.stats.mean_p_init, fam.stats.mean_l_opt, fam.stats.mean_best_floor
            );

            // CSV: one row per (heuristic, grid point).
            let mut rows = Vec::new();
            for s in &fam.series {
                for p in &s.points {
                    rows.push(vec![
                        s.kind.table_name().to_string(),
                        s.kind.label().replace(',', ";"),
                        fmt(p.target),
                        fmt(p.mean_period),
                        fmt(p.mean_latency),
                        p.n_feasible.to_string(),
                        p.n_total.to_string(),
                    ]);
                }
            }
            let path = args.out.join(format!("{}.csv", spec.id));
            write_csv(
                &path,
                &[
                    "heuristic",
                    "label",
                    "target",
                    "mean_period",
                    "mean_latency",
                    "n_feasible",
                    "n_total",
                ],
                &rows,
            )
            .expect("CSV write failed");
            println!("    wrote {}", path.display());

            // ASCII plot.
            let chart = Chart::default();
            let series: Vec<(String, Vec<(f64, f64)>)> = fam
                .series
                .iter()
                .map(|s| (s.kind.label().to_string(), s.xy()))
                .collect();
            println!("{}", chart.render(&series));

            // Shape checks vs the paper.
            let checks = if spec.n_procs >= 100 {
                checks_p100(&fam)
            } else {
                checks_p10(&fam)
            };
            if !checks.is_empty() {
                println!("  paper-shape checks:");
                print!("{}", render_checks(&checks));
            }
        }
    }
}
