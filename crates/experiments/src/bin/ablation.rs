//! Ablation studies for the design choices documented in DESIGN.md:
//!
//! 1. **H3 ratio denominator** — the paper's H3 formula prints
//!    `Δperiod(j)` where H5 uses `Δperiod(i)`; we treat it as a typo and
//!    default to the `i` form. This ablation runs both on the same
//!    families.
//! 2. **3-way vs 2-way exploration** — how much does the pair-split
//!    exploration of H2a/H2b buy over plain splitting at equal processor
//!    budgets?
//! 3. **Deal-skeleton replication** (paper §7 extension) — period floors
//!    with and without replicating bottleneck intervals.
//!
//! ```text
//! ablation [--instances K] [--seed S] [--threads T]
//! ```

use pipeline_core::replication::replicate_bottlenecks;
use pipeline_core::trajectory::{fixed_period_trajectory, TrajectoryKind};
use pipeline_core::{sp_bi_p, sp_mono_p, SpBiPOptions};
use pipeline_experiments::shard::{sharded_map_items, ShardOptions};
use pipeline_model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};
use pipeline_model::prelude::*;
use pipeline_model::util::mean;

fn main() {
    let mut instances = 30usize;
    let mut seed = 2007u64;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().expect("flag value");
        match flag.as_str() {
            "--instances" => instances = value().parse().expect("--instances N"),
            "--seed" => seed = value().parse().expect("--seed N"),
            "--threads" => threads = value().parse().expect("--threads N"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    println!("Ablations — {instances} instances per point, seed {seed}\n");
    ratio_denominator_ablation(seed, instances, threads);
    explo_vs_split_ablation(seed, instances, threads);
    replication_ablation(seed, instances, threads);
    refinement_ablation(seed, instances, threads);
}

fn refinement_ablation(seed: u64, instances: usize, threads: usize) {
    use pipeline_core::refine::refine_mapping;
    use pipeline_core::HeuristicKind;
    println!(
        "4. Local-search refinement on top of each heuristic \
         (period floor, E2 n=20 p=10, latency budget 1.2×)"
    );
    let params = InstanceParams::paper(ExperimentKind::E2, 20, 10);
    let gen = InstanceGenerator::new(params);
    for kind in HeuristicKind::ALL
        .into_iter()
        .filter(|k| k.is_period_fixed())
    {
        let rows = sharded_map_items(
            gen.batch(seed, instances),
            ShardOptions::with_threads(threads),
            |(app, pf)| {
                let cm = CostModel::new(&app, &pf);
                let base = kind.run(&cm, 0.0);
                let refined = refine_mapping(&cm, &base.mapping, base.latency * 1.2);
                (base.period, refined.period, refined.moves as f64)
            },
        );
        let before: Vec<f64> = rows.iter().map(|r| r.0).collect();
        let after: Vec<f64> = rows.iter().map(|r| r.1).collect();
        let mv: Vec<f64> = rows.iter().map(|r| r.2).collect();
        println!(
            "   {:<16} floor {:.3} → {:.3} ({:+.1}%), {:.1} moves avg",
            kind.label(),
            mean(&before).unwrap(),
            mean(&after).unwrap(),
            100.0 * (mean(&after).unwrap() / mean(&before).unwrap() - 1.0),
            mean(&mv).unwrap()
        );
    }
    println!();
}

fn ratio_denominator_ablation(seed: u64, instances: usize, threads: usize) {
    println!(
        "1. H3 (Sp bi P) ratio denominator: Δperiod(i) [default] vs Δperiod(j) [paper literal]"
    );
    for kind in [ExperimentKind::E1, ExperimentKind::E2] {
        let params = InstanceParams::paper(kind, 20, 10);
        let gen = InstanceGenerator::new(params);
        let outcomes = sharded_map_items(
            gen.batch(seed, instances),
            ShardOptions::with_threads(threads),
            |(app, pf)| {
                let cm = CostModel::new(&app, &pf);
                let target = 0.7 * cm.single_proc_period();
                let over_i = sp_bi_p(&cm, target, SpBiPOptions::default());
                let over_j = sp_bi_p(
                    &cm,
                    target,
                    SpBiPOptions {
                        denominator_over_i: false,
                        ..SpBiPOptions::default()
                    },
                );
                (
                    over_i.feasible.then_some(over_i.latency),
                    over_j.feasible.then_some(over_j.latency),
                )
            },
        );
        let li: Vec<f64> = outcomes.iter().filter_map(|(a, _)| *a).collect();
        let lj: Vec<f64> = outcomes.iter().filter_map(|(_, b)| *b).collect();
        println!(
            "   {kind}: mean latency over-i {:.3} ({} feas) vs over-j {:.3} ({} feas)",
            mean(&li).unwrap_or(f64::NAN),
            li.len(),
            mean(&lj).unwrap_or(f64::NAN),
            lj.len()
        );
    }
    println!();
}

fn explo_vs_split_ablation(seed: u64, instances: usize, threads: usize) {
    println!("2. Period floors: 2-way splitting vs 3-way exploration (p = 10 / p = 100)");
    for procs in [10usize, 100] {
        let params = InstanceParams::paper(ExperimentKind::E1, 40, procs);
        let gen = InstanceGenerator::new(params);
        let floors = sharded_map_items(
            gen.batch(seed, instances),
            ShardOptions::with_threads(threads),
            |(app, pf)| {
                let cm = CostModel::new(&app, &pf);
                let f_split = fixed_period_trajectory(&cm, TrajectoryKind::SplitMono).min_period();
                let f_explo = fixed_period_trajectory(&cm, TrajectoryKind::ExploMono).min_period();
                let f_explo_bi = fixed_period_trajectory(&cm, TrajectoryKind::ExploBi).min_period();
                (f_split, f_explo, f_explo_bi)
            },
        );
        let s: Vec<f64> = floors.iter().map(|f| f.0).collect();
        let e: Vec<f64> = floors.iter().map(|f| f.1).collect();
        let eb: Vec<f64> = floors.iter().map(|f| f.2).collect();
        println!(
            "   p = {procs:>3}: Sp mono {:.3} | 3-Explo mono {:.3} | 3-Explo bi {:.3}",
            mean(&s).unwrap(),
            mean(&e).unwrap(),
            mean(&eb).unwrap()
        );
    }
    println!();
}

fn replication_ablation(seed: u64, instances: usize, threads: usize) {
    println!("3. Deal-skeleton replication (paper §7): period floor after splitting vs after splitting + replication");
    let params = InstanceParams::paper(ExperimentKind::E3, 10, 10);
    let gen = InstanceGenerator::new(params);
    let results = sharded_map_items(
        gen.batch(seed, instances),
        ShardOptions::with_threads(threads),
        |(app, pf)| {
            let cm = CostModel::new(&app, &pf);
            let base = sp_mono_p(&cm, 0.0); // run to the splitting floor
            let rep = replicate_bottlenecks(&cm, &base.mapping, 0.0); // replicate to the floor
            (base.period, rep.period, rep.latency / base.latency)
        },
    );
    let split_floor: Vec<f64> = results.iter().map(|r| r.0).collect();
    let rep_floor: Vec<f64> = results.iter().map(|r| r.1).collect();
    let lat_ratio: Vec<f64> = results.iter().map(|r| r.2).collect();
    println!(
        "   E3 n=10 p=10: splitting floor {:.3} → with replication {:.3} \
         (×{:.2} better), latency ratio {:.3}",
        mean(&split_floor).unwrap(),
        mean(&rep_floor).unwrap(),
        mean(&split_floor).unwrap() / mean(&rep_floor).unwrap(),
        mean(&lat_ratio).unwrap()
    );
}
