//! Regenerates the paper's Table 1: failure thresholds of the six
//! heuristics for every experiment × stage count (p = 10).
//!
//! ```text
//! table1 [--instances K] [--seed S] [--threads T] [--out DIR] [--procs P]
//! ```

use pipeline_experiments::config::TABLE1_STAGE_COUNTS;
use pipeline_experiments::csvout::{fmt, write_csv};
use pipeline_experiments::table::table1;
use std::path::PathBuf;

fn main() {
    let mut instances = 50usize;
    let mut seed = 2007u64;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut out = PathBuf::from("results");
    let mut procs = 10usize;

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--instances" => instances = value().parse().expect("--instances N"),
            "--seed" => seed = value().parse().expect("--seed N"),
            "--threads" => threads = value().parse().expect("--threads N"),
            "--out" => out = PathBuf::from(value()),
            "--procs" => procs = value().parse().expect("--procs N"),
            "--help" | "-h" => {
                eprintln!(
                    "usage: table1 [--instances K] [--seed S] [--threads T] \
                     [--out DIR] [--procs P]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    println!("Table 1 — failure thresholds (p = {procs}, {instances} instances/cell, seed {seed})");
    let t0 = std::time::Instant::now();
    let table = table1(seed, instances, procs, &TABLE1_STAGE_COUNTS, threads);
    println!("computed in {:.1}s\n", t0.elapsed().as_secs_f64());
    print!("{}", table.render());

    let mut rows = Vec::new();
    for r in &table.rows {
        for (h, kind) in pipeline_core::HeuristicKind::ALL.iter().enumerate() {
            rows.push(vec![
                r.kind.to_string(),
                r.n_stages.to_string(),
                kind.table_name().to_string(),
                fmt(r.thresholds[h]),
            ]);
        }
    }
    let path = out.join("table1.csv");
    write_csv(
        &path,
        &["experiment", "n_stages", "heuristic", "threshold"],
        &rows,
    )
    .expect("CSV write failed");
    println!("wrote {}", path.display());

    // The paper's headline observations about Table 1, verified live.
    let mut h5_eq_h6 = true;
    let mut h1_min_count = 0usize;
    let mut h2_max_count = 0usize;
    for r in &table.rows {
        if (r.thresholds[4] - r.thresholds[5]).abs() > 1e-9 {
            h5_eq_h6 = false;
        }
        let period_fixed = &r.thresholds[0..4];
        let min = period_fixed.iter().copied().fold(f64::INFINITY, f64::min);
        let max = period_fixed
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        if (r.thresholds[0] - min).abs() < 1e-9 {
            h1_min_count += 1;
        }
        // The paper attributes the largest thresholds to 3-Explo mono; in
        // our reproduction the 3-Exploration *family* (H2 or H3) holds the
        // max — the two variants swap depending on the fallback rule the
        // paper leaves unspecified (DESIGN.md §4).
        if (r.thresholds[1] - max).abs() < 1e-9 || (r.thresholds[2] - max).abs() < 1e-9 {
            h2_max_count += 1;
        }
    }
    println!("\npaper-shape checks:");
    println!(
        "  [{}] H5 == H6 in every cell (paper: \"surprisingly ... the same\")",
        if h5_eq_h6 { "OK " } else { "DIFF" }
    );
    println!(
        "  [{}] H1 (Sp mono P) has the smallest period-fixed threshold in {}/{} cells",
        if h1_min_count * 2 >= table.rows.len() {
            "OK "
        } else {
            "DIFF"
        },
        h1_min_count,
        table.rows.len()
    );
    println!(
        "  [{}] a 3-Exploration heuristic (H2/H3) has the largest period-fixed threshold in {}/{} cells",
        if h2_max_count * 2 >= table.rows.len() { "OK " } else { "DIFF" },
        h2_max_count,
        table.rows.len()
    );
}
