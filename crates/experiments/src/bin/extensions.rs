//! Extension studies beyond the paper's evaluation: loaded latency under
//! saturation and robustness to single-processor slowdown.
//!
//! ```text
//! extensions [--instances K] [--seed S] [--threads T] [--datasets D] [--gamma G]
//! ```

use pipeline_experiments::loaded::{loaded_latency_study, render_loaded};
use pipeline_experiments::robustness::{
    link_robustness_study, render_link_robustness, render_robustness, robustness_study,
};
use pipeline_model::generator::{ExperimentKind, InstanceParams};

fn main() {
    let mut instances = 30usize;
    let mut seed = 2007u64;
    let mut threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut datasets = 60usize;
    let mut gamma = 0.7f64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || it.next().expect("flag value");
        match flag.as_str() {
            "--instances" => instances = value().parse().expect("--instances N"),
            "--seed" => seed = value().parse().expect("--seed N"),
            "--threads" => threads = value().parse().expect("--threads N"),
            "--datasets" => datasets = value().parse().expect("--datasets N"),
            "--gamma" => gamma = value().parse().expect("--gamma F"),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    println!("Extension studies — {instances} instances, seed {seed}\n");

    println!("A. Loaded latency: simulated max response time under saturating input");
    println!("   (eq. 2 is the throttled value; saturation queues in front of the bottleneck)\n");
    for (kind, n, p) in [
        (ExperimentKind::E1, 20, 10),
        (ExperimentKind::E3, 10, 10),
        (ExperimentKind::E4, 20, 10),
    ] {
        println!(
            "-- {} (n = {n}, p = {p}, target 0.6·P_init, {datasets} data sets)",
            kind.label()
        );
        let rows = loaded_latency_study(
            InstanceParams::paper(kind, n, p),
            seed,
            instances,
            0.6,
            datasets,
            threads,
        );
        print!("{}", render_loaded(&rows));
        println!();
    }

    println!("B. Robustness: worst-case period when one enrolled processor slows down\n");
    for (kind, n, p) in [(ExperimentKind::E1, 20, 10), (ExperimentKind::E3, 10, 10)] {
        println!("-- {} (n = {n}, p = {p}, target 0.6·P_init)", kind.label());
        let rows = robustness_study(
            InstanceParams::paper(kind, n, p),
            seed,
            instances,
            0.6,
            gamma,
            threads,
        );
        print!("{}", render_robustness(&rows, gamma));
        println!();
    }

    println!("C. Link robustness: worst-case period when one boundary link degrades\n");
    for (kind, n, p) in [(ExperimentKind::E1, 20, 10), (ExperimentKind::E4, 20, 10)] {
        println!("-- {} (n = {n}, p = {p}, target 0.6·P_init)", kind.label());
        let rows = link_robustness_study(
            InstanceParams::paper(kind, n, p),
            seed,
            instances,
            0.6,
            gamma,
            threads,
        );
        print!("{}", render_link_robustness(&rows, gamma));
        println!();
    }
}
