//! Terminal scatter/line plots for the figure binaries.

/// A multi-series character plot.
#[derive(Debug, Clone)]
pub struct Chart {
    /// Plot area width in columns.
    pub width: usize,
    /// Plot area height in rows.
    pub height: usize,
    /// Axis labels.
    pub x_label: String,
    /// Axis labels.
    pub y_label: String,
}

impl Default for Chart {
    fn default() -> Self {
        Chart {
            width: 72,
            height: 24,
            x_label: "Period".into(),
            y_label: "Latency".into(),
        }
    }
}

/// Series markers, one per heuristic in Table-1 order.
pub const MARKERS: [char; 6] = ['1', '2', '3', '4', '5', '6'];

impl Chart {
    /// Renders `series` (label, points) into a plot with axes and legend.
    /// Points outside the data bounding box never occur (bounds are
    /// computed from the data); empty series are listed in the legend as
    /// `(no feasible point)`.
    pub fn render(&self, series: &[(String, Vec<(f64, f64)>)]) -> String {
        assert!(self.width >= 20 && self.height >= 8, "chart too small");
        let all: Vec<(f64, f64)> = series
            .iter()
            .flat_map(|(_, pts)| pts.iter().copied())
            .collect();
        if all.is_empty() {
            return "(no data)\n".to_string();
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        // Degenerate ranges get a small pad so everything maps mid-plot.
        if x_max - x_min < 1e-12 {
            x_min -= 0.5;
            x_max += 0.5;
        }
        if y_max - y_min < 1e-12 {
            y_min -= 0.5;
            y_max += 0.5;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, (_, pts)) in series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            for &(x, y) in pts {
                let cx = ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let cy =
                    ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy; // y grows upward
                let cell = &mut grid[row][cx];
                // Overlapping series: show the later one (closest to the
                // legend order the paper uses).
                *cell = marker;
            }
        }

        let mut out = String::new();
        out.push_str(&format!(
            "{} ({} ↑)\n",
            self.y_label,
            self.y_label.to_lowercase()
        ));
        for (r, row) in grid.iter().enumerate() {
            let y_here = y_max - (y_max - y_min) * r as f64 / (self.height - 1) as f64;
            let label = if r == 0 || r == self.height - 1 || r == self.height / 2 {
                format!("{y_here:>8.2} |")
            } else {
                format!("{:>8} |", "")
            };
            out.push_str(&label);
            out.extend(row.iter());
            out.push('\n');
        }
        out.push_str(&format!("{:>9}+{}\n", "", "-".repeat(self.width)));
        out.push_str(&format!(
            "{:>9} {:<12.2}{:>width$.2}  ({})\n",
            "",
            x_min,
            x_max,
            self.x_label,
            width = self.width - 12
        ));
        out.push_str("  legend: ");
        for (si, (label, pts)) in series.iter().enumerate() {
            let marker = MARKERS[si % MARKERS.len()];
            if pts.is_empty() {
                out.push_str(&format!("[{marker}] {label} (no feasible point)  "));
            } else {
                out.push_str(&format!("[{marker}] {label}  "));
            }
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_and_legend() {
        let chart = Chart::default();
        let series = vec![
            ("alpha".to_string(), vec![(1.0, 1.0), (2.0, 2.0)]),
            ("beta".to_string(), vec![(1.0, 2.0)]),
        ];
        let s = chart.render(&series);
        assert!(s.contains('1'));
        assert!(s.contains('2'));
        assert!(s.contains("alpha"));
        assert!(s.contains("beta"));
        assert!(s.contains("legend"));
    }

    #[test]
    fn empty_series_listed_as_infeasible() {
        let chart = Chart::default();
        let series = vec![
            ("ok".to_string(), vec![(0.0, 0.0), (1.0, 1.0)]),
            ("never".to_string(), vec![]),
        ];
        let s = chart.render(&series);
        assert!(s.contains("never (no feasible point)"));
    }

    #[test]
    fn no_data_at_all() {
        let chart = Chart::default();
        let s = chart.render(&[("x".to_string(), vec![])]);
        assert_eq!(s, "(no data)\n");
    }

    #[test]
    fn degenerate_single_point() {
        let chart = Chart::default();
        let s = chart.render(&[("pt".to_string(), vec![(5.0, 5.0)])]);
        assert!(s.contains('1'));
    }

    #[test]
    fn extreme_points_stay_in_bounds() {
        let chart = Chart {
            width: 30,
            height: 10,
            ..Chart::default()
        };
        let series = vec![(
            "s".to_string(),
            vec![(0.0, 0.0), (100.0, 100.0), (50.0, 25.0)],
        )];
        // Must not panic on boundary indices.
        let s = chart.render(&series);
        assert!(s.lines().count() > 10);
    }
}
