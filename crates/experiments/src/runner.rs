//! Per-instance evaluation and a small scoped-thread parallel map.

use pipeline_core::trajectory::{fixed_period_trajectory, Trajectory, TrajectoryKind};
use pipeline_core::{sp_bi_p, SpBiPOptions};
use pipeline_model::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything the sweeps need from one random instance, precomputed once:
/// the instance itself, its scalar landmarks, and the target-independent
/// trajectories of H1/H2a/H2b.
pub struct InstanceEval {
    /// The application.
    pub app: Application,
    /// The platform.
    pub platform: Platform,
    /// Single-processor (Lemma 1) period — where every heuristic starts.
    pub p_init: f64,
    /// Optimal latency `L_opt`.
    pub l_opt: f64,
    /// H1 split trajectory.
    pub traj_split_mono: Trajectory,
    /// H2a exploration trajectory.
    pub traj_explo_mono: Trajectory,
    /// H2b exploration trajectory.
    pub traj_explo_bi: Trajectory,
    /// H4 (`Sp bi P`) period floor: the period its unconstrained run
    /// bottoms out at (its per-instance failure threshold).
    pub sp_bi_p_floor: f64,
}

impl InstanceEval {
    /// Evaluates one instance.
    pub fn new(app: Application, platform: Platform) -> Self {
        let cm = CostModel::new(&app, &platform);
        let p_init = cm.single_proc_period();
        let l_opt = cm.optimal_latency();
        let traj_split_mono = fixed_period_trajectory(&cm, TrajectoryKind::SplitMono);
        let traj_explo_mono = fixed_period_trajectory(&cm, TrajectoryKind::ExploMono);
        let traj_explo_bi = fixed_period_trajectory(&cm, TrajectoryKind::ExploBi);
        let sp_bi_p_floor = sp_bi_p(&cm, 0.0, SpBiPOptions::default()).period;
        InstanceEval {
            app,
            platform,
            p_init,
            l_opt,
            traj_split_mono,
            traj_explo_mono,
            traj_explo_bi,
            sp_bi_p_floor,
        }
    }

    /// A cost model bound to this instance.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel::new(&self.app, &self.platform)
    }

    /// The tightest period any of the trajectory heuristics reaches — used
    /// to scale sweep grids.
    pub fn best_floor(&self) -> f64 {
        self.traj_split_mono
            .min_period()
            .min(self.traj_explo_mono.min_period())
            .min(self.traj_explo_bi.min_period())
            .min(self.sp_bi_p_floor)
    }
}

/// Applies `f` to every item on `threads` scoped threads, preserving
/// order. Panics in workers propagate.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.min(n);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }
    // Items behind Options so workers can take them by index.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("each slot is taken once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("all slots are filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline_model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = parallel_map(items.clone(), 8, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_and_empty() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(empty, 4, |x: i32| x).is_empty());
    }

    #[test]
    fn parallel_matches_serial_on_instance_eval() {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E1, 10, 10));
        let instances = gen.batch(3, 6);
        let serial: Vec<f64> = instances
            .iter()
            .map(|(a, p)| InstanceEval::new(a.clone(), p.clone()).best_floor())
            .collect();
        let parallel: Vec<f64> =
            parallel_map(instances, 4, |(a, p)| InstanceEval::new(a, p).best_floor());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn instance_eval_landmarks_are_consistent() {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 12, 10));
        let (app, pf) = gen.instance(1, 0);
        let ev = InstanceEval::new(app, pf);
        assert!(ev.best_floor() <= ev.p_init + 1e-9);
        assert!(ev.l_opt > 0.0);
        // Trajectory floors are reachable results.
        assert!(ev.traj_split_mono.min_period() > 0.0);
        assert!(ev.sp_bi_p_floor > 0.0);
    }
}
