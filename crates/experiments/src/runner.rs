//! Per-instance evaluation for the sweep engine.
//!
//! [`InstanceEval`] precomputes everything a sweep needs from one random
//! instance: its scalar landmarks plus the *target-independent* split
//! trajectories available on its platform class —
//!
//! * Communication Homogeneous instances record the paper's H1/H2a/H2b
//!   trajectories and the H4 (`Sp bi P`) period floor;
//! * fully heterogeneous instances (scenario-zoo families `two-tier`,
//!   `comm-dominant`) record the §7 extension's trajectory
//!   ([`pipeline_core::hetero_trajectory`], reported as
//!   [`HeuristicKind::HeteroSplit`]).
//!
//! The parallel map that used to live here is now backed by the sharded
//! work-queue engine of [`crate::shard`]; `parallel_map` survives as the
//! order-preserving convenience wrapper the rest of the harness uses.

use crate::shard::{sharded_map_items, ShardOptions};
use pipeline_core::trajectory::{fixed_period_trajectory, Trajectory, TrajectoryKind};
use pipeline_core::{hetero_trajectory, sp_bi_p, HeteroSplitOptions, HeuristicKind, SpBiPOptions};
use pipeline_model::prelude::*;

/// Everything the sweeps need from one random instance, precomputed once.
pub struct InstanceEval {
    /// The application.
    pub app: Application,
    /// The platform.
    pub platform: Platform,
    /// Single-processor (Lemma 1) period — where every heuristic starts.
    pub p_init: f64,
    /// Optimal latency `L_opt`.
    pub l_opt: f64,
    /// The target-independent period-fixed trajectories recorded for this
    /// instance's platform class, keyed by heuristic.
    pub trajectories: Vec<(HeuristicKind, Trajectory)>,
    /// H4 (`Sp bi P`) period floor: the period its unconstrained run
    /// bottoms out at (its per-instance failure threshold). `None` on
    /// fully heterogeneous platforms, where H4 does not apply.
    pub sp_bi_p_floor: Option<f64>,
}

impl InstanceEval {
    /// Evaluates one instance, recording the trajectories its platform
    /// class supports.
    pub fn new(app: Application, platform: Platform) -> Self {
        let cm = CostModel::new(&app, &platform);
        let p_init = cm.single_proc_period();
        let l_opt = cm.optimal_latency();
        let (trajectories, sp_bi_p_floor) = if platform.is_comm_homogeneous() {
            (
                vec![
                    (
                        HeuristicKind::SpMonoP,
                        fixed_period_trajectory(&cm, TrajectoryKind::SplitMono),
                    ),
                    (
                        HeuristicKind::ThreeExploMono,
                        fixed_period_trajectory(&cm, TrajectoryKind::ExploMono),
                    ),
                    (
                        HeuristicKind::ThreeExploBi,
                        fixed_period_trajectory(&cm, TrajectoryKind::ExploBi),
                    ),
                ],
                Some(sp_bi_p(&cm, 0.0, SpBiPOptions::default()).period),
            )
        } else {
            (
                vec![(
                    HeuristicKind::HeteroSplit,
                    hetero_trajectory(&cm, HeteroSplitOptions::default()),
                )],
                None,
            )
        };
        InstanceEval {
            app,
            platform,
            p_init,
            l_opt,
            trajectories,
            sp_bi_p_floor,
        }
    }

    /// A cost model bound to this instance.
    pub fn cost_model(&self) -> CostModel<'_> {
        CostModel::new(&self.app, &self.platform)
    }

    /// The recorded trajectory of one heuristic, when its class applies
    /// to this instance's platform.
    pub fn trajectory(&self, kind: HeuristicKind) -> Option<&Trajectory> {
        self.trajectories
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, t)| t)
    }

    /// The tightest period any of the recorded trajectory heuristics
    /// reaches — used to scale sweep grids.
    pub fn best_floor(&self) -> f64 {
        self.trajectories
            .iter()
            .map(|(_, t)| t.min_period())
            .chain(self.sp_bi_p_floor)
            .fold(f64::INFINITY, f64::min)
    }
}

/// Applies `f` to every item on `threads` worker threads, preserving
/// order. Backed by the chunked work-stealing engine of [`crate::shard`]
/// (one lock per chunk instead of one per item); output is identical for
/// every thread count. Panics in workers propagate.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    assert!(threads >= 1, "need at least one thread");
    sharded_map_items(items, ShardOptions::with_threads(threads), f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline_model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};
    use pipeline_model::scenario::{ScenarioFamily, ScenarioGenerator};

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..97).collect();
        let out = parallel_map(items.clone(), 8, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_and_empty() {
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |x| x + 1), vec![2, 3, 4]);
        let empty: Vec<i32> = vec![];
        assert!(parallel_map(empty, 4, |x: i32| x).is_empty());
    }

    #[test]
    fn parallel_matches_serial_on_instance_eval() {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E1, 10, 10));
        let instances = gen.batch(3, 6);
        let serial: Vec<f64> = instances
            .iter()
            .map(|(a, p)| InstanceEval::new(a.clone(), p.clone()).best_floor())
            .collect();
        let parallel: Vec<f64> =
            parallel_map(instances, 4, |(a, p)| InstanceEval::new(a, p).best_floor());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn instance_eval_landmarks_are_consistent() {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 12, 10));
        let (app, pf) = gen.instance(1, 0);
        let ev = InstanceEval::new(app, pf);
        assert!(ev.best_floor() <= ev.p_init + 1e-9);
        assert!(ev.l_opt > 0.0);
        // Trajectory floors are reachable results.
        let h1 = ev.trajectory(HeuristicKind::SpMonoP).expect("homog eval");
        assert!(h1.min_period() > 0.0);
        assert!(ev.sp_bi_p_floor.expect("homog eval") > 0.0);
        assert!(ev.trajectory(HeuristicKind::HeteroSplit).is_none());
    }

    #[test]
    fn heterogeneous_instances_record_the_extension_trajectory() {
        let gen = ScenarioGenerator::new(ScenarioFamily::TwoTier.params(8, 6));
        let (app, pf) = gen.instance(4, 0);
        assert!(!pf.is_comm_homogeneous());
        let ev = InstanceEval::new(app, pf);
        assert!(ev.trajectory(HeuristicKind::SpMonoP).is_none());
        assert!(ev.sp_bi_p_floor.is_none());
        let het = ev
            .trajectory(HeuristicKind::HeteroSplit)
            .expect("hetero eval records the extension");
        assert!(het.min_period() > 0.0);
        assert!(ev.best_floor() <= ev.p_init + 1e-9);
    }
}
