//! Per-instance evaluation for the sweep engine.
//!
//! [`InstanceEval`] is the sweep-facing view of one random instance: a
//! [`PreparedInstance`] from the solver-service API whose platform-class
//! caches are forced *eagerly* at construction — the sweeps build evals
//! inside worker shards, so eager evaluation is what parallelizes. On
//! top of the prepared caches it exposes the class-filtered accessors the
//! paper's experiments expect:
//!
//! * Communication Homogeneous instances expose the paper's H1/H2a/H2b
//!   trajectories and the H4 (`Sp bi P`) period floor;
//! * fully heterogeneous instances (scenario-zoo families `two-tier`,
//!   `comm-dominant`) expose the §7 extension's trajectory, reported as
//!   [`HeuristicKind::HeteroSplit`].
//!
//! The old `runner::parallel_map` wrapper is gone — callers use the
//! sharded work-queue engine of [`crate::shard`] directly
//! ([`crate::shard::sharded_map_items`] is the drop-in replacement).

use pipeline_core::service::{CachedTrajectory, PreparedInstance};
use pipeline_core::trajectory::Trajectory;
use pipeline_core::{HeuristicKind, SolveWorkspace};
use pipeline_model::prelude::*;

/// Everything the sweeps need from one random instance, precomputed once.
pub struct InstanceEval {
    prepared: PreparedInstance,
}

impl InstanceEval {
    /// Evaluates one instance, eagerly recording the trajectories its
    /// platform class supports.
    pub fn new(app: Application, platform: Platform) -> Self {
        InstanceEval::new_in(app, platform, &mut SolveWorkspace::new())
    }

    /// [`Self::new`] reusing a caller-owned workspace for every solver
    /// run of the eager evaluation — the sweep shards pass one workspace
    /// per worker, so consecutive instance evaluations recycle all solve
    /// scratch. Bit-identical to [`Self::new`].
    pub fn new_in(app: Application, platform: Platform, ws: &mut SolveWorkspace) -> Self {
        let prepared = PreparedInstance::new(app, platform);
        prepared.prepare_in(ws);
        InstanceEval { prepared }
    }

    /// The underlying prepared instance (lazy caches beyond the platform
    /// class included).
    pub fn prepared(&self) -> &PreparedInstance {
        &self.prepared
    }

    /// The application.
    pub fn app(&self) -> &Application {
        self.prepared.app()
    }

    /// The platform.
    pub fn platform(&self) -> &Platform {
        self.prepared.platform()
    }

    /// Single-processor (Lemma 1) period — where every heuristic starts.
    pub fn p_init(&self) -> f64 {
        self.prepared.single_proc_period()
    }

    /// Optimal latency `L_opt`.
    pub fn l_opt(&self) -> f64 {
        self.prepared.optimal_latency()
    }

    /// A cost model bound to this instance.
    pub fn cost_model(&self) -> CostModel<'_> {
        self.prepared.cost_model()
    }

    /// The recorded trajectory of one heuristic, when its class applies
    /// to this instance's platform: H1/H2a/H2b on Communication
    /// Homogeneous platforms, the §7 extension otherwise.
    pub fn trajectory(&self, kind: HeuristicKind) -> Option<&Trajectory> {
        self.cached_trajectory(kind).map(|c| c.trajectory())
    }

    /// The indexed trajectory cache of one heuristic (same class filter
    /// as [`Self::trajectory`]): O(log) bound queries and allocation-free
    /// coordinate lookups for the sweep grids.
    pub fn cached_trajectory(&self, kind: HeuristicKind) -> Option<&CachedTrajectory> {
        let comm_homogeneous = self.platform().is_comm_homogeneous();
        let class_ok = match kind {
            HeuristicKind::SpMonoP
            | HeuristicKind::ThreeExploMono
            | HeuristicKind::ThreeExploBi => comm_homogeneous,
            HeuristicKind::HeteroSplit => !comm_homogeneous,
            _ => false,
        };
        if !class_ok {
            return None;
        }
        self.prepared.trajectory(kind)
    }

    /// H4 (`Sp bi P`) period floor: the period its unconstrained run
    /// bottoms out at (its per-instance failure threshold). `None` on
    /// fully heterogeneous platforms, where H4 does not apply.
    pub fn sp_bi_p_floor(&self) -> Option<f64> {
        self.prepared.sp_bi_p_floor()
    }

    /// The tightest period any of the recorded trajectory heuristics
    /// reaches — used to scale sweep grids.
    pub fn best_floor(&self) -> f64 {
        self.prepared.best_period_floor()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{sharded_map_items, ShardOptions};
    use pipeline_model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};
    use pipeline_model::scenario::{ScenarioFamily, ScenarioGenerator};

    #[test]
    fn parallel_matches_serial_on_instance_eval() {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E1, 10, 10));
        let instances = gen.batch(3, 6);
        let serial: Vec<f64> = instances
            .iter()
            .map(|(a, p)| InstanceEval::new(a.clone(), p.clone()).best_floor())
            .collect();
        let parallel: Vec<f64> =
            sharded_map_items(instances, ShardOptions::with_threads(4), |(a, p)| {
                InstanceEval::new(a, p).best_floor()
            });
        assert_eq!(serial, parallel);
    }

    #[test]
    fn instance_eval_landmarks_are_consistent() {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 12, 10));
        let (app, pf) = gen.instance(1, 0);
        let ev = InstanceEval::new(app, pf);
        assert!(ev.best_floor() <= ev.p_init() + 1e-9);
        assert!(ev.l_opt() > 0.0);
        // Trajectory floors are reachable results.
        let h1 = ev.trajectory(HeuristicKind::SpMonoP).expect("homog eval");
        assert!(h1.min_period() > 0.0);
        assert!(ev.sp_bi_p_floor().expect("homog eval") > 0.0);
        assert!(ev.trajectory(HeuristicKind::HeteroSplit).is_none());
    }

    #[test]
    fn heterogeneous_instances_record_the_extension_trajectory() {
        let gen = ScenarioGenerator::new(ScenarioFamily::TwoTier.params(8, 6));
        let (app, pf) = gen.instance(4, 0);
        assert!(!pf.is_comm_homogeneous());
        let ev = InstanceEval::new(app, pf);
        assert!(ev.trajectory(HeuristicKind::SpMonoP).is_none());
        assert!(ev.sp_bi_p_floor().is_none());
        let het = ev
            .trajectory(HeuristicKind::HeteroSplit)
            .expect("hetero eval records the extension");
        assert!(het.min_period() > 0.0);
        assert!(ev.best_floor() <= ev.p_init() + 1e-9);
    }
}
