//! Sharded exact branch-and-bound: the v3 dominance DP's first-interval
//! roots fanned over the work-queue engine.
//!
//! The DP phase of the exact solvers ([`pipeline_core::exact`]) splits
//! naturally at the first interval: each root branch `[0, end)` is an
//! independent value search, so the roots go through
//! [`crate::shard::sharded_map_indices_with`] with one
//! [`SolveWorkspace`] per worker (each root call resets its own level
//! tables) and one [`SharedIncumbent`] shared by all workers — the
//! atomic minimum gives late shards the early shards' bounds for free.
//! Roots are ordered by optimistic lower bound
//! ([`exact_root_order`]), so the most promising subtrees run first and
//! tighten the incumbent early.
//!
//! **Determinism.** The DP phase computes *values*, and those are exact
//! under any schedule: incumbent pruning only discards non-improving
//! leaves, and per-root dominance never crosses shards. The mapping (and
//! every tie-break) comes from the sequential value-guided witness pass,
//! which re-walks the v2 partition search pruned against the now-known
//! optimum. Results are therefore **bit-identical** to the sequential
//! entry points at any thread count — pinned at 1/2/4 threads by
//! `tests/exact_frontier.rs`.
//!
//! Instances the DP does not support
//! ([`pipeline_core::exact::supports_dominance_dp`]) fall back to the
//! sequential v2 solvers — same results, no parallel speedup.

use crate::shard::{sharded_map_indices_with, ShardOptions};
use pipeline_core::exact::{
    exact_front_shadow_root, exact_min_latency_for_period_in, exact_min_latency_from_value,
    exact_min_latency_value_root, exact_min_period_from_value, exact_min_period_in,
    exact_min_period_value_root, exact_pareto_front_in, exact_root_order, supports_dominance_dp,
    SharedIncumbent,
};
use pipeline_core::{ParetoFront, SolveWorkspace};
use pipeline_model::prelude::*;

/// Exact minimum period with the DP roots fanned over `opts.threads`
/// workers. Bit-identical to [`pipeline_core::exact::exact_min_period`]
/// at any thread count.
pub fn exact_min_period_sharded(cm: &CostModel<'_>, opts: ShardOptions) -> (f64, IntervalMapping) {
    let mut ws = SolveWorkspace::new();
    if !supports_dominance_dp(cm) {
        return exact_min_period_in(cm, &mut ws);
    }
    let roots = exact_root_order(cm);
    let inc = SharedIncumbent::new();
    sharded_map_indices_with(roots.len(), opts, SolveWorkspace::new, |ws, i| {
        exact_min_period_value_root(cm, roots[i], &inc, ws);
    });
    exact_min_period_from_value(cm, inc.current(), &mut ws)
}

/// Exact minimum latency under a period bound, sharded like
/// [`exact_min_period_sharded`]. Bit-identical to
/// [`pipeline_core::exact::exact_min_latency_for_period`].
pub fn exact_min_latency_for_period_sharded(
    cm: &CostModel<'_>,
    period_bound: f64,
    opts: ShardOptions,
) -> Option<(f64, IntervalMapping)> {
    let mut ws = SolveWorkspace::new();
    if !supports_dominance_dp(cm) {
        return exact_min_latency_for_period_in(cm, period_bound, &mut ws);
    }
    let roots = exact_root_order(cm);
    let inc = SharedIncumbent::new();
    sharded_map_indices_with(roots.len(), opts, SolveWorkspace::new, |ws, i| {
        exact_min_latency_value_root(cm, period_bound, roots[i], &inc, ws);
    });
    exact_min_latency_from_value(cm, period_bound, inc.current(), &mut ws)
}

/// Exact Pareto front with the shadow-front roots sharded: each worker
/// collects a root-local coordinate front, the fronts merge in root
/// order (the Pareto filter of a union is order-independent), and the
/// sequential witness sweep reconstructs mappings. Bit-identical to
/// [`pipeline_core::exact::exact_pareto_front`].
pub fn exact_pareto_front_sharded(
    cm: &CostModel<'_>,
    opts: ShardOptions,
) -> ParetoFront<IntervalMapping> {
    let mut ws = SolveWorkspace::new();
    if !supports_dominance_dp(cm) {
        return exact_pareto_front_in(cm, &mut ws);
    }
    let roots = exact_root_order(cm);
    let locals: Vec<ParetoFront<()>> =
        sharded_map_indices_with(roots.len(), opts, SolveWorkspace::new, |ws, i| {
            let mut local: ParetoFront<()> = ParetoFront::new();
            exact_front_shadow_root(cm, roots[i], &mut local, ws);
            local
        });
    let mut shadow: ParetoFront<()> = ParetoFront::new();
    for local in &locals {
        for (period, latency, ()) in local.iter() {
            if !shadow.dominated(period, latency) {
                shadow.offer(period, latency, ());
            }
        }
    }
    pipeline_core::exact::exact_front_from_shadow(cm, &shadow, &mut ws)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline_model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};

    /// Uniform-speed platform: the DP's home regime, so the sharded
    /// path actually exercises the root fan-out.
    fn uniform_instance(n: usize, p: usize, seed: u64) -> (Application, Platform) {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E1, n, p));
        let (app, _) = gen.instance(seed, 0);
        let pf = Platform::comm_homogeneous(vec![10.0; p], 10.0).unwrap();
        (app, pf)
    }

    #[test]
    fn sharded_solvers_match_sequential_bitwise() {
        for (n, p, seed) in [(12usize, 6usize, 0u64), (14, 8, 1)] {
            let (app, pf) = uniform_instance(n, p, seed);
            let cm = CostModel::new(&app, &pf);
            let (v_seq, m_seq) = pipeline_core::exact::exact_min_period(&cm);
            let front_seq = pipeline_core::exact::exact_pareto_front(&cm);
            let bound = v_seq * 1.4;
            let lat_seq = pipeline_core::exact::exact_min_latency_for_period(&cm, bound);
            for threads in [1usize, 2, 4] {
                let opts = ShardOptions::with_threads(threads);
                let (v, m) = exact_min_period_sharded(&cm, opts);
                assert_eq!(v.to_bits(), v_seq.to_bits(), "threads={threads}");
                assert_eq!(m, m_seq, "threads={threads}");
                let lat = exact_min_latency_for_period_sharded(&cm, bound, opts);
                match (&lat, &lat_seq) {
                    (Some((la, ma)), Some((lb, mb))) => {
                        assert_eq!(la.to_bits(), lb.to_bits(), "threads={threads}");
                        assert_eq!(ma, mb, "threads={threads}");
                    }
                    (None, None) => {}
                    other => panic!("feasibility disagreement: {other:?}"),
                }
                let front = exact_pareto_front_sharded(&cm, opts);
                assert_eq!(front.len(), front_seq.len(), "threads={threads}");
                for (a, b) in front.iter().zip(front_seq.iter()) {
                    assert_eq!(a.0.to_bits(), b.0.to_bits());
                    assert_eq!(a.1.to_bits(), b.1.to_bits());
                    assert_eq!(a.2, b.2);
                }
            }
        }
    }

    #[test]
    fn sharded_fallback_handles_unsupported_instances() {
        // Pairwise-distinct speeds at scale: DP routing declines, the
        // sharded entry falls back to the sequential v2 result.
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 18, 16));
        let (app, pf) = gen.instance(0, 0);
        let cm = CostModel::new(&app, &pf);
        assert!(!supports_dominance_dp(&cm));
        let (v_seq, m_seq) = pipeline_core::exact::exact_min_period(&cm);
        let (v, m) = exact_min_period_sharded(&cm, ShardOptions::with_threads(4));
        assert_eq!(v.to_bits(), v_seq.to_bits());
        assert_eq!(m, m_seq);
    }
}
