//! Chaos study: how do scheduled pipelines behave when the platform
//! misbehaves — and is re-planning worth it?
//!
//! For every (scenario family × heuristic × named fault plan) cell the
//! study schedules at nominal conditions, then *executes* the mapping
//! under the fault plan with the deterministic fault simulator
//! ([`pipeline_sim::faults`]), measuring delivered throughput, tail
//! latency and data-set loss. For plans that correspond to a detectable
//! platform fault (a speed dip, a fail-stop) it additionally runs the
//! warm-started re-planner ([`pipeline_core::replan`]) and reports the
//! ride-it-out period against the re-planned period plus the migration
//! distance — the operational answer to "should we move stages when a
//! processor degrades?".
//!
//! Everything is deterministic and sharded through the same engine as
//! the paper experiments: output is bit-identical for every thread
//! count (asserted by tests and by `pwsched chaos --verify-threads`).

use crate::shard::{sharded_map_items_with, ShardOptions};
use pipeline_core::{
    replan, DetectedFault, HeuristicKind, Objective, PreparedInstance, SolveRequest,
    SolveWorkspace, Strategy,
};
use pipeline_model::prelude::*;
use pipeline_model::scenario::{ScenarioFamily, ScenarioGenerator, ScenarioParams};
use pipeline_model::util::mean;
use pipeline_sim::{ArrivalProcess, FailStop, FaultPlan, FaultedSim, SimConfig, Slowdown};

/// A named, reproducible fault scenario. Concrete plans are derived
/// per instance from the mapping's nominal period (fault *timing*
/// scales with the workload; fault *shape* is fixed by the kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPlanKind {
    /// The bottleneck processor runs at half speed through the middle
    /// half of the run, then recovers.
    SpeedDip,
    /// The bottleneck processor fail-stops halfway through the run.
    FailStop,
    /// Every transfer takes up to +25% deterministic jitter.
    Jitter,
    /// Bursty arrivals (4 at a time, 125% of the sustainable rate) into
    /// bounded inter-stage queues of capacity 2.
    Burst,
}

impl ChaosPlanKind {
    /// Every named plan, in display order.
    pub const ALL: [ChaosPlanKind; 4] = [
        ChaosPlanKind::SpeedDip,
        ChaosPlanKind::FailStop,
        ChaosPlanKind::Jitter,
        ChaosPlanKind::Burst,
    ];

    /// Stable label (also the CLI spelling).
    pub fn label(&self) -> &'static str {
        match self {
            ChaosPlanKind::SpeedDip => "speed-dip",
            ChaosPlanKind::FailStop => "fail-stop",
            ChaosPlanKind::Jitter => "jitter",
            ChaosPlanKind::Burst => "burst",
        }
    }

    /// Parses a CLI label.
    pub fn from_label(label: &str) -> Option<ChaosPlanKind> {
        ChaosPlanKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// Whether the plan corresponds to a detectable *platform* fault the
    /// re-planner can act on (jitter and bursts leave speeds and the
    /// processor set untouched — there is nothing to re-plan).
    pub fn has_platform_fault(&self) -> bool {
        matches!(self, ChaosPlanKind::SpeedDip | ChaosPlanKind::FailStop)
    }

    /// The concrete fault plan for a mapping whose nominal period is
    /// `period`, over a run of `n_datasets`, targeting `victim`.
    pub fn build(&self, victim: ProcId, period: f64, n_datasets: usize, seed: u64) -> FaultPlan {
        let horizon = period * n_datasets as f64;
        let mut plan = FaultPlan {
            seed,
            ..FaultPlan::empty()
        };
        match self {
            ChaosPlanKind::SpeedDip => plan.slowdowns.push(Slowdown {
                proc: victim,
                at: 0.25 * horizon,
                until: 0.75 * horizon,
                factor: 0.5,
            }),
            ChaosPlanKind::FailStop => plan.fail_stops.push(FailStop {
                proc: victim,
                at: 0.5 * horizon,
            }),
            ChaosPlanKind::Jitter => plan.jitter = 0.25,
            ChaosPlanKind::Burst => {
                plan.arrivals = Some(ArrivalProcess::Bursty {
                    rate: 1.25 / period,
                    burst: 4,
                });
                plan.queue_capacity = Some(2);
            }
        }
        plan
    }

    /// The detected fault handed to the re-planner, if any.
    fn detected_fault(&self, victim: ProcId) -> Option<DetectedFault> {
        match self {
            ChaosPlanKind::SpeedDip => Some(DetectedFault::SpeedDrift {
                proc: victim,
                factor: 0.5,
            }),
            ChaosPlanKind::FailStop => Some(DetectedFault::ProcessorLoss { proc: victim }),
            ChaosPlanKind::Jitter | ChaosPlanKind::Burst => None,
        }
    }
}

impl std::fmt::Display for ChaosPlanKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Study configuration.
#[derive(Debug, Clone)]
pub struct ChaosParams {
    /// Scenario families to sweep.
    pub families: Vec<ScenarioFamily>,
    /// Heuristics to schedule with.
    pub heuristics: Vec<HeuristicKind>,
    /// Fault plans to execute.
    pub plans: Vec<ChaosPlanKind>,
    /// Stages per instance.
    pub n_stages: usize,
    /// Processors per instance.
    pub n_procs: usize,
    /// Instances per family.
    pub n_instances: usize,
    /// Data sets per simulated run.
    pub n_datasets: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Period target factor for period-fixed heuristics
    /// (`target = factor × P_init`).
    pub target_factor: f64,
    /// Worker threads (output is identical for any value).
    pub threads: usize,
}

impl Default for ChaosParams {
    fn default() -> Self {
        ChaosParams {
            families: ScenarioFamily::ALL.to_vec(),
            heuristics: vec![HeuristicKind::SpMonoP, HeuristicKind::SpBiP],
            plans: ChaosPlanKind::ALL.to_vec(),
            n_stages: 12,
            n_procs: 8,
            n_instances: 10,
            n_datasets: 60,
            seed: 2007,
            target_factor: 0.6,
            threads: 1,
        }
    }
}

/// One (family × heuristic × plan) cell, averaged over the feasible
/// instances. Ratio columns are `NaN` when undefined (no feasible
/// instance, no completions for the p99, or a plan with no platform
/// fault for the replan columns); the renderer prints those as `-`.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Scenario family.
    pub family: ScenarioFamily,
    /// Scheduling heuristic.
    pub kind: HeuristicKind,
    /// Fault plan.
    pub plan: ChaosPlanKind,
    /// Instances where the heuristic met its target.
    pub n_feasible: usize,
    /// Mean fraction of offered data sets that completed.
    pub mean_completed_frac: f64,
    /// Mean fraction of offered data sets dropped (shed or lost).
    pub mean_dropped_frac: f64,
    /// Mean `sustained throughput × nominal period` (1.0 = the run
    /// sustains the scheduled rate despite the faults).
    pub mean_throughput_ratio: f64,
    /// Mean `p99 latency / nominal eq. 2 latency`.
    pub mean_p99_ratio: f64,
    /// Mean `ride-it-out period / nominal period` on the degraded
    /// platform (`inf` when the incumbent enrolled a lost processor).
    pub mean_rideout_ratio: f64,
    /// Mean `re-planned period / nominal period`.
    pub mean_replan_ratio: f64,
    /// Mean migration distance (stages whose processor changed) of the
    /// adopted plan.
    pub mean_migration: f64,
}

/// Per-instance measurement for one (heuristic, plan) cell.
#[derive(Debug, Clone, Copy)]
struct Sample {
    completed_frac: f64,
    dropped_frac: f64,
    throughput_ratio: f64,
    p99_ratio: f64,
    rideout_ratio: f64,
    replan_ratio: f64,
    migration: f64,
}

/// Runs the chaos study. Deterministic: for fixed params the result is
/// bit-identical for every thread count.
pub fn chaos_study(params: &ChaosParams) -> Vec<ChaosRow> {
    assert!(params.n_instances >= 1 && params.n_datasets >= 1);
    // Flat job list: (family index, instance), in a fixed order the
    // sharded engine preserves.
    let mut jobs = Vec::with_capacity(params.families.len() * params.n_instances);
    for (f, &family) in params.families.iter().enumerate() {
        let gen = ScenarioGenerator::new(ScenarioParams::preset(
            family,
            params.n_stages,
            params.n_procs,
        ));
        for (i, inst) in gen
            .batch(params.seed, params.n_instances)
            .into_iter()
            .enumerate()
        {
            jobs.push((f, i, inst));
        }
    }

    let heuristics = params.heuristics.clone();
    let plans = params.plans.clone();
    let n_datasets = params.n_datasets;
    let target_factor = params.target_factor;
    let seed = params.seed;
    let opts = ShardOptions::with_threads(params.threads);

    let per_job: Vec<Vec<Option<Sample>>> = sharded_map_items_with(
        jobs,
        opts,
        SolveWorkspace::new,
        move |ws, (f, i, (app, pf))| {
            let cm = CostModel::new(&app, &pf);
            let p0 = cm.single_proc_period();
            let l0 = cm.optimal_latency();
            // One prepared instance per job, shared by every replan.
            let prepared = PreparedInstance::new(app.clone(), pf.clone());
            let request = SolveRequest::new(Objective::MinPeriod).strategy(Strategy::BestOfAll);
            let mut out = Vec::with_capacity(heuristics.len() * plans.len());
            for &kind in &heuristics {
                // Comm-heterogeneous families route around the split
                // engine exactly as the sweep harness does.
                if !kind.applicable_to(&pf) {
                    out.extend(std::iter::repeat_n(None, plans.len()));
                    continue;
                }
                let target = if kind.is_period_fixed() {
                    target_factor * p0
                } else {
                    2.0 * l0
                };
                let res = kind.run_in(&cm, target, ws);
                if !res.feasible {
                    out.extend(std::iter::repeat_n(None, plans.len()));
                    continue;
                }
                let nominal_period = res.period;
                let nominal_latency = cm.latency(&res.mapping);
                // Victim: the processor owning the bottleneck interval.
                let victim = {
                    let (mut best_j, mut best) = (0usize, f64::NEG_INFINITY);
                    for j in 0..res.mapping.n_intervals() {
                        let c = cm.cycle_time(&res.mapping, j);
                        if c > best {
                            best = c;
                            best_j = j;
                        }
                    }
                    res.mapping.proc_of(best_j)
                };
                for &plan_kind in &plans {
                    let plan_seed = seed ^ mix_indices(f, i);
                    let plan = plan_kind.build(victim, nominal_period, n_datasets, plan_seed);
                    let sim = FaultedSim::new(&cm, &res.mapping, SimConfig::default(), plan);
                    let deg = sim.run(n_datasets).degraded;
                    let offered = deg.offered.max(1) as f64;
                    let (rideout_ratio, replan_ratio, migration) =
                        match plan_kind.detected_fault(victim) {
                            Some(fault) => {
                                match replan(&prepared, &res.mapping, &fault, &request, ws) {
                                    Ok((_, rep)) => (
                                        rep.period_before / rep.period_nominal,
                                        rep.period_after / rep.period_nominal,
                                        rep.migration_distance as f64,
                                    ),
                                    Err(_) => (f64::NAN, f64::NAN, f64::NAN),
                                }
                            }
                            None => (f64::NAN, f64::NAN, f64::NAN),
                        };
                    out.push(Some(Sample {
                        completed_frac: deg.completed as f64 / offered,
                        dropped_frac: deg.dropped as f64 / offered,
                        throughput_ratio: deg.sustained_throughput() * nominal_period,
                        p99_ratio: deg.p99_latency().map_or(f64::NAN, |p| p / nominal_latency),
                        rideout_ratio,
                        replan_ratio,
                        migration,
                    }));
                }
            }
            out
        },
    );

    // Aggregate in fixed (family, heuristic, plan) order; `per_job` is in
    // job order, so the fold is independent of the thread count.
    let nh = params.heuristics.len();
    let np = params.plans.len();
    let mut rows = Vec::with_capacity(params.families.len() * nh * np);
    for (f, &family) in params.families.iter().enumerate() {
        let family_jobs = &per_job[f * params.n_instances..(f + 1) * params.n_instances];
        for (h, &kind) in params.heuristics.iter().enumerate() {
            for (p, &plan) in params.plans.iter().enumerate() {
                let samples: Vec<Sample> = family_jobs
                    .iter()
                    .filter_map(|job| job[h * np + p])
                    .collect();
                let col = |f: fn(&Sample) -> f64| {
                    let vals: Vec<f64> = samples.iter().map(f).filter(|v| !v.is_nan()).collect();
                    mean(&vals).unwrap_or(f64::NAN)
                };
                rows.push(ChaosRow {
                    family,
                    kind,
                    plan,
                    n_feasible: samples.len(),
                    mean_completed_frac: col(|s| s.completed_frac),
                    mean_dropped_frac: col(|s| s.dropped_frac),
                    mean_throughput_ratio: col(|s| s.throughput_ratio),
                    mean_p99_ratio: col(|s| s.p99_ratio),
                    mean_rideout_ratio: col(|s| s.rideout_ratio),
                    mean_replan_ratio: col(|s| s.replan_ratio),
                    mean_migration: col(|s| s.migration),
                });
            }
        }
    }
    rows
}

/// Deterministic per-job seed salt (splitmix-style finalizer over the
/// family/instance indices).
fn mix_indices(f: usize, i: usize) -> u64 {
    let mut z = (f as u64) << 32 | i as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Formats a ratio cell: `-` for NaN, `inf` for infinities.
fn ratio_cell(v: f64, width: usize) -> String {
    if v.is_nan() {
        format!("{:>width$}", "-")
    } else if v.is_infinite() {
        format!("{:>width$}", "inf")
    } else {
        format!("{v:>width$.3}")
    }
}

/// Renders the study as an aligned table.
pub fn render_chaos(rows: &[ChaosRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<16} {:<10} {:>4} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8} {:>6}\n",
        "family",
        "heuristic",
        "plan",
        "feas",
        "compl%",
        "drop%",
        "tput-r",
        "p99-x",
        "ride-x",
        "replan-x",
        "migr"
    ));
    for r in rows {
        if r.n_feasible == 0 {
            out.push_str(&format!(
                "{:<14} {:<16} {:<10} {:>4} (no feasible instance)\n",
                r.family.label(),
                r.kind.label(),
                r.plan.label(),
                0
            ));
            continue;
        }
        out.push_str(&format!(
            "{:<14} {:<16} {:<10} {:>4} {:>7.1} {:>7.1} {:>7.3} {} {} {} {}\n",
            r.family.label(),
            r.kind.label(),
            r.plan.label(),
            r.n_feasible,
            100.0 * r.mean_completed_frac,
            100.0 * r.mean_dropped_frac,
            r.mean_throughput_ratio,
            ratio_cell(r.mean_p99_ratio, 8),
            ratio_cell(r.mean_rideout_ratio, 8),
            ratio_cell(r.mean_replan_ratio, 8),
            ratio_cell(r.mean_migration, 6),
        ));
    }
    out
}

/// Fingerprints a row set for bit-identity checks (thread-count
/// invariance): every float is captured by its raw bits.
pub fn chaos_fingerprint(rows: &[ChaosRow]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for r in rows {
        eat(r.n_feasible as u64);
        for v in [
            r.mean_completed_frac,
            r.mean_dropped_frac,
            r.mean_throughput_ratio,
            r.mean_p99_ratio,
            r.mean_rideout_ratio,
            r.mean_replan_ratio,
            r.mean_migration,
        ] {
            eat(v.to_bits());
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params(threads: usize) -> ChaosParams {
        ChaosParams {
            families: vec![ScenarioFamily::ALL[0], ScenarioFamily::ALL[2]],
            heuristics: vec![HeuristicKind::SpMonoP],
            plans: ChaosPlanKind::ALL.to_vec(),
            n_stages: 8,
            n_procs: 6,
            n_instances: 3,
            n_datasets: 30,
            seed: 42,
            target_factor: 0.6,
            threads,
        }
    }

    #[test]
    fn study_is_thread_count_invariant_bitwise() {
        let one = chaos_study(&small_params(1));
        let fp1 = chaos_fingerprint(&one);
        for t in [2, 4] {
            let other = chaos_study(&small_params(t));
            assert_eq!(fp1, chaos_fingerprint(&other), "threads = {t}");
        }
    }

    #[test]
    fn replan_columns_make_sense_on_platform_faults() {
        let rows = chaos_study(&small_params(2));
        for r in &rows {
            if r.n_feasible == 0 {
                continue;
            }
            match r.plan {
                ChaosPlanKind::SpeedDip | ChaosPlanKind::FailStop => {
                    // Replan adopts min(ride-out, re-solve): never worse
                    // than riding the fault out.
                    assert!(r.mean_replan_ratio <= r.mean_rideout_ratio + 1e-9, "{r:?}");
                    // Can be < 1: the best-of-all re-solve may beat the
                    // single-heuristic incumbent even degraded. But it
                    // is always a positive, finite period.
                    assert!(r.mean_replan_ratio > 0.0 && r.mean_replan_ratio.is_finite());
                    assert!(r.mean_migration >= 0.0);
                }
                ChaosPlanKind::Jitter | ChaosPlanKind::Burst => {
                    assert!(r.mean_rideout_ratio.is_nan());
                    assert!(r.mean_replan_ratio.is_nan());
                }
            }
        }
    }

    #[test]
    fn clean_cells_deliver_and_faulted_cells_degrade() {
        let rows = chaos_study(&small_params(1));
        for r in &rows {
            if r.n_feasible == 0 {
                continue;
            }
            assert!(r.mean_completed_frac >= 0.0 && r.mean_completed_frac <= 1.0);
            if r.plan == ChaosPlanKind::FailStop {
                // A mid-run fail-stop always loses the in-flight tail.
                assert!(r.mean_completed_frac < 1.0, "{r:?}");
            }
        }
    }

    #[test]
    fn renders_all_cells() {
        let params = small_params(1);
        let rows = chaos_study(&params);
        assert_eq!(
            rows.len(),
            params.families.len() * params.heuristics.len() * params.plans.len()
        );
        let s = render_chaos(&rows);
        assert!(s.contains("replan-x"));
        assert!(s.contains("speed-dip"));
        for f in &params.families {
            assert!(s.contains(f.label()));
        }
    }

    #[test]
    fn plan_labels_round_trip() {
        for k in ChaosPlanKind::ALL {
            assert_eq!(ChaosPlanKind::from_label(k.label()), Some(k));
        }
        assert_eq!(ChaosPlanKind::from_label("nope"), None);
    }
}
