//! Batched solving: many (instance, request) pairs through the sharded
//! work-queue engine.
//!
//! Each job pairs an [`Arc`]-shared [`PreparedInstance`] with one
//! [`SolveRequest`]; [`solve_batch`] routes the jobs through
//! [`crate::shard::sharded_map_items`], so the answers come back in job
//! order and are **bit-identical for every thread count** (chunk
//! boundaries never depend on `threads`, and each answer depends only on
//! its own job). Sharing one `Arc<PreparedInstance>` across many jobs is
//! the intended pattern: the first query against an instance pays for its
//! trajectories, every later query — on any worker thread — hits the
//! memoized caches.

use crate::shard::{sharded_map_items_with, ShardOptions};
use pipeline_core::service::{PreparedInstance, SolveError, SolveReport, SolveRequest};
use pipeline_core::tenancy::{
    CoSchedOptions, CoSchedule, PartitionObjective, TenancyError, TenantSet,
};
use pipeline_core::SolveWorkspace;
use pipeline_model::{DeltaError, InstanceDelta};
use std::sync::Arc;

/// One unit of batched work: a query against a (shared) prepared
/// instance.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The prepared instance; `Arc` so many jobs can share one session.
    pub instance: Arc<PreparedInstance>,
    /// The query.
    pub request: SolveRequest,
}

impl BatchJob {
    /// Pairs an instance with a request.
    pub fn new(instance: Arc<PreparedInstance>, request: SolveRequest) -> Self {
        BatchJob { instance, request }
    }
}

/// Answers every job, in job order, on the sharded engine. Each worker
/// shard owns one [`SolveWorkspace`] reused across every job it claims,
/// so the steady-state per-job cost is solving, not allocating solver
/// scratch. Output is bit-identical across thread counts (and to
/// workspace-free one-shot solves).
pub fn solve_batch(
    jobs: Vec<BatchJob>,
    opts: ShardOptions,
) -> Vec<Result<SolveReport, SolveError>> {
    sharded_map_items_with(jobs, opts, SolveWorkspace::new, |ws, job| {
        job.instance.solve_in(&job.request, ws)
    })
}

/// One unit of incremental batched work: an [`InstanceDelta`] applied to
/// a (shared) prepared instance, then one query against the updated
/// instance. The delta path (`PreparedInstance::apply_in`) carries over
/// every memoized artifact the edit does not invalidate, so many jobs
/// probing "what if the platform drifted like *this*?" against one base
/// session reuse its trajectories instead of re-deriving them per job.
#[derive(Debug, Clone)]
pub struct DeltaJob {
    /// The base instance; `Arc` so many what-if jobs share one session.
    pub instance: Arc<PreparedInstance>,
    /// The platform/application edit to apply first.
    pub delta: InstanceDelta,
    /// The query answered against the updated instance.
    pub request: SolveRequest,
}

impl DeltaJob {
    /// Pairs a base instance with a delta and a follow-up request.
    pub fn new(
        instance: Arc<PreparedInstance>,
        delta: InstanceDelta,
        request: SolveRequest,
    ) -> Self {
        DeltaJob {
            instance,
            delta,
            request,
        }
    }
}

/// Why one [`DeltaJob`] produced no report: the delta did not apply, or
/// the solve on the updated instance failed.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaSolveError {
    /// The delta was rejected ([`PreparedInstance::apply_in`]).
    Delta(DeltaError),
    /// The delta applied but the query failed.
    Solve(SolveError),
}

impl std::fmt::Display for DeltaSolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaSolveError::Delta(e) => write!(f, "delta rejected: {e}"),
            DeltaSolveError::Solve(e) => write!(f, "solve failed: {e}"),
        }
    }
}

impl std::error::Error for DeltaSolveError {}

/// Answers every delta job, in job order, on the sharded engine —
/// [`solve_batch`]'s incremental sibling. Identical determinism
/// guarantees: output is bit-identical across thread counts and to the
/// sequential apply-then-solve (pinned by `tests/delta_differential.rs`:
/// `apply` is observation-equivalent to a scratch preparation).
pub fn solve_delta_batch(
    jobs: Vec<DeltaJob>,
    opts: ShardOptions,
) -> Vec<Result<SolveReport, DeltaSolveError>> {
    sharded_map_items_with(jobs, opts, SolveWorkspace::new, |ws, job| {
        let next = job
            .instance
            .apply_in(&job.delta, ws)
            .map_err(DeltaSolveError::Delta)?;
        next.solve_in(&job.request, ws)
            .map_err(DeltaSolveError::Solve)
    })
}

/// One unit of multi-tenant batched work: co-schedule a (shared) tenant
/// set under one partition objective.
#[derive(Debug, Clone)]
pub struct TenantJob {
    /// The tenant set; `Arc` so many jobs (one per objective, say) share
    /// one set and its prepared instances.
    pub set: Arc<TenantSet>,
    /// The partition objective to optimize.
    pub objective: PartitionObjective,
    /// Co-scheduler knobs.
    pub options: CoSchedOptions,
}

impl TenantJob {
    /// Pairs a tenant set with an objective under default options.
    pub fn new(set: Arc<TenantSet>, objective: PartitionObjective) -> Self {
        TenantJob {
            set,
            objective,
            options: CoSchedOptions::default(),
        }
    }

    /// Overrides the co-scheduler options.
    pub fn options(mut self, options: CoSchedOptions) -> Self {
        self.options = options;
        self
    }
}

/// Co-schedules every tenant job, in job order, on the sharded engine —
/// the multi-tenant sibling of [`solve_batch`]. Same determinism
/// guarantees: the co-scheduler itself is deterministic, each answer
/// depends only on its own job, and worker shards never influence chunk
/// boundaries, so output is bit-identical across thread counts.
pub fn solve_tenant_batch(
    jobs: Vec<TenantJob>,
    opts: ShardOptions,
) -> Vec<Result<CoSchedule, TenancyError>> {
    sharded_map_items_with(jobs, opts, SolveWorkspace::new, |ws, job| {
        job.set.co_schedule(job.objective, &job.options, ws)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipeline_core::{Objective, Strategy};
    use pipeline_model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};
    use pipeline_model::io::format_report;

    fn fixture_jobs() -> Vec<BatchJob> {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 9, 6));
        let mut jobs = Vec::new();
        for seed in 0..4 {
            let (app, pf) = gen.instance(seed, 0);
            let prepared = Arc::new(PreparedInstance::new(app, pf));
            let p0 = prepared.single_proc_period();
            let l0 = prepared.optimal_latency();
            for request in [
                SolveRequest::new(Objective::MinPeriod),
                SolveRequest::new(Objective::MinLatencyForPeriod(0.7 * p0))
                    .strategy(Strategy::BestOfAll),
                SolveRequest::new(Objective::MinLatencyForPeriod(0.01 * p0))
                    .strategy(Strategy::BestOfAll),
                SolveRequest::new(Objective::MinPeriodForLatency(1.5 * l0))
                    .strategy(Strategy::BestOfAll),
                SolveRequest::new(Objective::ParetoFront),
            ] {
                jobs.push(BatchJob::new(Arc::clone(&prepared), request));
            }
        }
        jobs
    }

    /// Canonical string of an answer — the wire line, which captures
    /// solver, coordinates, mapping and front (or the error code +
    /// bound/floor) with round-trip float formatting.
    fn canon(answers: &[Result<SolveReport, SolveError>]) -> Vec<String> {
        answers
            .iter()
            .enumerate()
            .map(|(i, a)| match a {
                Ok(report) => format_report(&report.to_wire(i as u64)),
                Err(err) => format_report(&err.to_wire(i as u64)),
            })
            .collect()
    }

    #[test]
    fn batch_output_is_bit_identical_across_thread_counts() {
        let reference = canon(&solve_batch(fixture_jobs(), ShardOptions::with_threads(1)));
        assert!(reference.iter().any(|l| l.contains("status=ok")));
        assert!(reference.iter().any(|l| l.contains("bound-below-floor")));
        assert!(reference.iter().any(|l| l.contains("front=")));
        for threads in [2, 4] {
            let got = canon(&solve_batch(
                fixture_jobs(),
                ShardOptions::with_threads(threads),
            ));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    fn fixture_delta_jobs() -> Vec<DeltaJob> {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 9, 6));
        let mut jobs = Vec::new();
        for seed in 0..3 {
            let (app, pf) = gen.instance(seed, 0);
            let slowest = *pf.procs_by_speed_desc().last().unwrap();
            let prepared = Arc::new(PreparedInstance::new(app, pf.clone()));
            let deltas = [
                InstanceDelta::ProcSpeed {
                    proc: slowest,
                    speed: 0.5 * pf.speed(slowest),
                },
                InstanceDelta::StageWeight {
                    stage: seed as usize % 9,
                    work: 4.5,
                },
                InstanceDelta::ProcArrival { speed: 11.0 },
                InstanceDelta::ProcSpeed {
                    proc: 99,
                    speed: 1.0,
                }, // rejected
            ];
            for delta in deltas {
                jobs.push(DeltaJob::new(
                    Arc::clone(&prepared),
                    delta,
                    SolveRequest::new(Objective::MinPeriod).strategy(Strategy::BestOfAll),
                ));
            }
        }
        jobs
    }

    fn canon_delta(answers: &[Result<SolveReport, DeltaSolveError>]) -> Vec<String> {
        answers
            .iter()
            .enumerate()
            .map(|(i, a)| match a {
                Ok(report) => format_report(&report.to_wire(i as u64)),
                Err(err) => format!("{err}"),
            })
            .collect()
    }

    #[test]
    fn delta_batch_is_bit_identical_across_thread_counts_and_to_scratch() {
        let reference = canon_delta(&solve_delta_batch(
            fixture_delta_jobs(),
            ShardOptions::with_threads(1),
        ));
        assert!(reference.iter().any(|l| l.contains("status=ok")));
        assert!(reference.iter().any(|l| l.contains("delta rejected")));
        for threads in [2, 4] {
            let got = canon_delta(&solve_delta_batch(
                fixture_delta_jobs(),
                ShardOptions::with_threads(threads),
            ));
            assert_eq!(got, reference, "threads={threads}");
        }
        // And each answer equals the fully-from-scratch apply-then-solve.
        let scratch: Vec<Result<SolveReport, DeltaSolveError>> = fixture_delta_jobs()
            .into_iter()
            .map(|job| {
                let (app, pf) = job
                    .delta
                    .apply_to(job.instance.app(), job.instance.platform())
                    .map_err(DeltaSolveError::Delta)?;
                PreparedInstance::new(app, pf)
                    .solve(&job.request)
                    .map_err(DeltaSolveError::Solve)
            })
            .collect();
        assert_eq!(canon_delta(&scratch), reference);
    }

    fn fixture_tenant_jobs() -> Vec<TenantJob> {
        use pipeline_core::tenancy::Tenant;
        use pipeline_model::scenario::{TenantFamily, TenantScenarioGenerator};
        let mut jobs = Vec::new();
        for family in TenantFamily::ALL {
            let gen = TenantScenarioGenerator::new(family, 2, 5, 4);
            let scenario = gen.scenario(3, 0);
            let tenants = scenario
                .tenants
                .iter()
                .map(|spec| {
                    let prepared = Arc::new(PreparedInstance::new(
                        spec.app.clone(),
                        scenario.platform.clone(),
                    ));
                    let mut tenant = Tenant::new(prepared).weight(spec.weight);
                    if let Some(slo) = spec.slo {
                        tenant = tenant.slo(slo);
                    }
                    tenant
                })
                .collect();
            let set = Arc::new(TenantSet::new(tenants).expect("valid tenant set"));
            for objective in PartitionObjective::ALL {
                jobs.push(TenantJob::new(Arc::clone(&set), objective));
            }
        }
        jobs
    }

    fn canon_tenant(answers: &[Result<CoSchedule, TenancyError>]) -> Vec<String> {
        answers
            .iter()
            .enumerate()
            .map(|(i, a)| match a {
                Ok(sched) => format_report(&sched.to_wire(i as u64)),
                Err(err) => format!("{err}"),
            })
            .collect()
    }

    #[test]
    fn tenant_batch_is_bit_identical_across_thread_counts() {
        let reference = canon_tenant(&solve_tenant_batch(
            fixture_tenant_jobs(),
            ShardOptions::with_threads(1),
        ));
        assert!(reference.iter().all(|l| l.contains("solver=cosched")));
        for threads in [2, 4] {
            let got = canon_tenant(&solve_tenant_batch(
                fixture_tenant_jobs(),
                ShardOptions::with_threads(threads),
            ));
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn batch_answers_match_one_shot_solves() {
        let jobs = fixture_jobs();
        let one_shot: Vec<String> = canon(
            &jobs
                .iter()
                .map(|j| j.instance.solve(&j.request))
                .collect::<Vec<_>>(),
        );
        let batched = canon(&solve_batch(jobs, ShardOptions::with_threads(3)));
        assert_eq!(batched, one_shot);
    }
}
