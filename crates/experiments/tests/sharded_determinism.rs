//! Parallel-engine correctness: the sharded sweep must be **bit
//! identical** to the serial run (`threads == 1`) for a fixed seed,
//! regardless of thread count.

use pipeline_experiments::shard::{sharded_fold, sharded_map_indices, ShardOptions};
use pipeline_experiments::sweep::{run_scenario, FamilyResult};
use pipeline_model::scenario::ScenarioFamily;

/// Flattens every f64 a sweep result carries, in a fixed order.
fn fingerprint(fam: &FamilyResult) -> Vec<u64> {
    let mut bits = vec![
        fam.stats.mean_p_init.to_bits(),
        fam.stats.mean_l_opt.to_bits(),
        fam.stats.mean_best_floor.to_bits(),
        fam.stats.n_instances as u64,
    ];
    for g in fam.period_grid.iter().chain(&fam.latency_grid) {
        bits.push(g.to_bits());
    }
    for s in &fam.series {
        bits.push(s.points.len() as u64);
        for p in &s.points {
            bits.extend([
                p.target.to_bits(),
                p.mean_period.to_bits(),
                p.mean_latency.to_bits(),
                p.n_feasible as u64,
                p.n_total as u64,
            ]);
        }
    }
    bits
}

#[test]
fn sharded_sweep_is_bit_identical_to_serial_for_any_thread_count() {
    // One homogeneous paper family, one new homogeneous family, one
    // heterogeneous family — 16 instances span 8 default-size chunks, so
    // the threads=8 run genuinely schedules 8 workers.
    for family in [
        ScenarioFamily::E2,
        ScenarioFamily::PowerLawWork,
        ScenarioFamily::TwoTier,
    ] {
        let params = family.params(7, 6);
        let serial = fingerprint(&run_scenario(&params, 4242, 16, 6, 1));
        for threads in [2, 8] {
            let parallel = fingerprint(&run_scenario(&params, 4242, 16, 6, threads));
            assert_eq!(
                serial, parallel,
                "{family}: sweep output diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn engine_primitives_are_thread_count_invariant() {
    // Index map: order preserved exactly.
    let reference: Vec<f64> = (0..100).map(|i| (i as f64).sqrt()).collect();
    for threads in [1usize, 2, 8, 32] {
        let opts = ShardOptions {
            threads,
            chunk_size: 8,
        };
        let got = sharded_map_indices(100, opts, |i| (i as f64).sqrt());
        assert_eq!(got, reference);
    }

    // Fold: chunk-ordered merge fixes the floating-point association.
    let sum_bits = |threads: usize| {
        sharded_fold(
            257,
            ShardOptions {
                threads,
                chunk_size: 8,
            },
            |r| r.map(|i| 1.0 / (1.0 + i as f64)).collect::<Vec<f64>>(),
        )
        .unwrap()
        .iter()
        .sum::<f64>()
        .to_bits()
    };
    let reference = sum_bits(1);
    for threads in [2, 8] {
        assert_eq!(sum_bits(threads), reference);
    }
}
