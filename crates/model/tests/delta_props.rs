//! Property tests for instance deltas: the `update` wire verb
//! round-trips for every delta kind under random parameters, applied
//! deltas always yield valid instances, and reconstructing deltas
//! restore the original instance bit-for-bit.

use pipeline_model::io::{format_update, parse_update, WireUpdate};
use pipeline_model::scenario::{ScenarioFamily, ScenarioGenerator};
use pipeline_model::InstanceDelta;
use proptest::prelude::*;

/// Builds one delta of the given kind from raw draws. `a`/`b` are index
/// draws, `x` a positive magnitude; out-of-range indices are exercised
/// on purpose — `apply_to` must reject them structurally.
fn delta_from(kind: usize, a: usize, b: usize, x: f64) -> InstanceDelta {
    match kind {
        0 => InstanceDelta::ProcSpeed { proc: a, speed: x },
        1 => InstanceDelta::ProcArrival { speed: x },
        2 => InstanceDelta::ProcDeparture { proc: a },
        3 => InstanceDelta::Bandwidth { bandwidth: x },
        4 => InstanceDelta::LinkBandwidth {
            from: a,
            to: b,
            bandwidth: x,
        },
        _ => InstanceDelta::StageWeight { stage: a, work: x },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `format_update` → `parse_update` is the identity for every delta
    /// kind with arbitrary (round-trippable) numeric payloads.
    #[test]
    fn prop_update_wire_round_trips(
        id in 0u64..1_000_000,
        kind in 0usize..6,
        a in 0usize..32,
        b in 0usize..32,
        x in 1e-6f64..1e6,
    ) {
        let upd = WireUpdate { id, delta: delta_from(kind, a, b, x) };
        let line = format_update(&upd);
        prop_assert_eq!(parse_update(&line).expect("round trip"), upd, "{}", line);
    }

    /// Applying a random delta to a random zoo instance either fails with
    /// a structured error or yields a fully valid instance (the
    /// constructors re-validate everything).
    #[test]
    fn prop_applied_deltas_yield_valid_instances(
        seed in 0u64..10_000,
        family_idx in 0usize..ScenarioFamily::ALL.len(),
        kind in 0usize..6,
        a in 0usize..12,
        b in 0usize..12,
        x in 0.01f64..100.0,
    ) {
        let family = ScenarioFamily::ALL[family_idx];
        let gen = ScenarioGenerator::new(family.params(8, 5));
        let (app, pf) = gen.instance(seed, 0);
        if let Ok((app2, pf2)) = delta_from(kind, a, b, x).apply_to(&app, &pf) {
            prop_assert!(app2.n_stages() >= 1);
            prop_assert!(pf2.n_procs() >= 1);
            prop_assert!(pf2.max_speed() > 0.0);
            // The speed order is rebuilt, not inherited.
            let order = pf2.procs_by_speed_desc();
            for w in order.windows(2) {
                prop_assert!(pf2.speed(w[0]) >= pf2.speed(w[1]));
            }
        }
    }

    /// A delta followed by its reconstructing inverse restores the
    /// original instance exactly (bitwise, via `PartialEq` on the model
    /// types) — the property `PreparedInstance::apply` relies on for its
    /// byte-identity guarantee.
    #[test]
    fn prop_reconstructing_deltas_restore_the_instance(
        seed in 0u64..10_000,
        family_idx in 0usize..ScenarioFamily::ALL.len(),
        proc in 0usize..5,
        stage in 0usize..8,
        x in 0.01f64..100.0,
    ) {
        let family = ScenarioFamily::ALL[family_idx];
        let gen = ScenarioGenerator::new(family.params(8, 5));
        let (app, pf) = gen.instance(seed, 1);

        let old_speed = pf.speed(proc);
        let (app1, pf1) = InstanceDelta::ProcSpeed { proc, speed: x }
            .apply_to(&app, &pf).expect("in range");
        let (app2, pf2) = InstanceDelta::ProcSpeed { proc, speed: old_speed }
            .apply_to(&app1, &pf1).expect("in range");
        prop_assert_eq!(&app2, &app);
        prop_assert_eq!(&pf2, &pf);

        let old_work = app.work(stage);
        let (app3, pf3) = InstanceDelta::StageWeight { stage, work: x }
            .apply_to(&app, &pf).expect("in range");
        let (app4, pf4) = InstanceDelta::StageWeight { stage, work: old_work }
            .apply_to(&app3, &pf3).expect("in range");
        prop_assert_eq!(&app4, &app);
        prop_assert_eq!(&pf4, &pf);

        // Arrival then departure of the new processor is the identity.
        let (app5, pf5) = InstanceDelta::ProcArrival { speed: x }
            .apply_to(&app, &pf).expect("valid");
        let (app6, pf6) = InstanceDelta::ProcDeparture { proc: pf.n_procs() }
            .apply_to(&app5, &pf5).expect("in range");
        prop_assert_eq!(&app6, &app);
        prop_assert_eq!(&pf6, &pf);
    }
}
