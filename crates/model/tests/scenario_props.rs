//! Property tests for the scenario registry: seeded determinism,
//! parameter-range respect, `batch` ≡ individual draws, and legacy-stream
//! parity — mirroring and extending the `generator.rs` unit tests for
//! every registered family.

use pipeline_model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};
use pipeline_model::scenario::{
    CommDominantConfig, FamilyConfig, HeavyTailConfig, PowerLawWorkConfig, ScenarioFamily,
    ScenarioGenerator, TwoTierConfig,
};
use proptest::prelude::*;

#[test]
fn batch_matches_individual_instances_for_every_family() {
    for family in ScenarioFamily::ALL {
        let gen = ScenarioGenerator::new(family.params(7, 6));
        let batch = gen.batch(99, 4);
        assert_eq!(batch.len(), 4);
        for (i, (app, pf)) in batch.iter().enumerate() {
            let (a, p) = gen.instance(99, i as u64);
            assert_eq!(*app, a, "{family} #{i}");
            assert_eq!(*pf, p, "{family} #{i}");
        }
    }
}

#[test]
fn paper_families_reproduce_the_legacy_generator_streams() {
    for (family, kind) in [
        (ScenarioFamily::E1, ExperimentKind::E1),
        (ScenarioFamily::E2, ExperimentKind::E2),
        (ScenarioFamily::E3, ExperimentKind::E3),
        (ScenarioFamily::E4, ExperimentKind::E4),
    ] {
        let zoo = ScenarioGenerator::new(family.params(12, 9));
        let legacy = InstanceGenerator::new(InstanceParams::paper(kind, 12, 9));
        for i in 0..5 {
            let (a1, p1) = zoo.instance(2007, i);
            let (a2, p2) = legacy.instance(2007, i);
            assert_eq!(a1, a2, "{family}: application stream diverged");
            assert_eq!(p1, p2, "{family}: platform stream diverged");
        }
    }
}

#[test]
fn heavy_tail_respects_its_configured_ranges() {
    let c = HeavyTailConfig::default();
    let gen = ScenarioGenerator::new(ScenarioFamily::HeavyTail.params(30, 40));
    for idx in 0..5 {
        let (app, pf) = gen.instance(3, idx);
        for &s in pf.speeds() {
            assert!(
                s >= c.speed_range.0 && s <= c.speed_range.1,
                "speed {s} outside Pareto support"
            );
        }
        for &w in app.works() {
            assert!(w >= c.work_range.0 && w <= c.work_range.1);
        }
        for &d in app.deltas() {
            assert!(d >= c.delta_range.0 && d <= c.delta_range.1);
        }
    }
}

#[test]
fn two_tier_speeds_respect_their_tier_ranges() {
    let c = TwoTierConfig::default();
    let gen = ScenarioGenerator::new(ScenarioFamily::TwoTier.params(6, 12));
    let n_fast = ((12.0 * c.fast_fraction).round() as usize).clamp(1, 12);
    for idx in 0..5 {
        let (_, pf) = gen.instance(4, idx);
        for (u, &s) in pf.speeds().iter().enumerate() {
            let (lo, hi) = if u < n_fast {
                c.fast_speed
            } else {
                c.slow_speed
            };
            assert!(
                s >= lo as f64 && s <= hi as f64,
                "P{u} speed {s} outside its tier range"
            );
            assert_eq!(s.fract(), 0.0, "tier speeds are integers");
        }
    }
}

#[test]
fn comm_dominant_respects_its_configured_ranges() {
    let c = CommDominantConfig::default();
    let gen = ScenarioGenerator::new(ScenarioFamily::CommDominant.params(10, 7));
    for idx in 0..5 {
        let (app, pf) = gen.instance(5, idx);
        for &d in app.deltas() {
            assert!(d >= c.delta_range.0 && d <= c.delta_range.1);
        }
        for &w in app.works() {
            assert!(w >= c.work_range.0 && w <= c.work_range.1);
        }
        for u in 0..7 {
            for v in 0..7 {
                if u == v {
                    continue;
                }
                let b = pf.bandwidth(u, v);
                assert!(b >= c.bandwidth_range.0 && b <= c.bandwidth_range.1);
                assert_eq!(b, pf.bandwidth(v, u), "links must be symmetric");
            }
        }
        let io = pf.io_bandwidth_of(0);
        assert!(io >= c.bandwidth_range.0 && io <= c.bandwidth_range.1);
    }
}

#[test]
fn power_law_works_respect_their_support() {
    let c = PowerLawWorkConfig::default();
    let gen = ScenarioGenerator::new(ScenarioFamily::PowerLawWork.params(40, 6));
    for idx in 0..5 {
        let (app, pf) = gen.instance(6, idx);
        for &w in app.works() {
            assert!(
                w >= c.work_range.0 && w <= c.work_range.1,
                "work {w} outside Pareto support"
            );
        }
        for &d in app.deltas() {
            assert!(d >= c.delta_range.0 && d <= c.delta_range.1);
        }
        for &s in pf.speeds() {
            assert!((c.speed_range.0 as f64..=c.speed_range.1 as f64).contains(&s));
            assert_eq!(s.fract(), 0.0, "speeds are integers");
        }
    }
}

#[test]
fn custom_configs_are_respected() {
    // Tightened knobs must visibly change the draws.
    let tight = ScenarioGenerator::new(pipeline_model::ScenarioParams {
        n_stages: 20,
        n_procs: 10,
        config: FamilyConfig::HeavyTail(HeavyTailConfig {
            speed_range: (2.0, 4.0),
            ..HeavyTailConfig::default()
        }),
    });
    let (_, pf) = tight.instance(1, 0);
    for &s in pf.speeds() {
        assert!((2.0..=4.0).contains(&s));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Determinism and index-distinctness for every family under random
    /// seeds: `instance(seed, i)` is reproducible and consecutive indices
    /// draw different applications.
    #[test]
    fn prop_seeded_determinism_and_distinct_indices(
        seed in 0u64..100_000,
        family_idx in 0usize..ScenarioFamily::ALL.len(),
    ) {
        let family = ScenarioFamily::ALL[family_idx];
        let gen = ScenarioGenerator::new(family.params(10, 6));
        let (a1, p1) = gen.instance(seed, 0);
        let (a2, p2) = gen.instance(seed, 0);
        prop_assert_eq!(&a1, &a2);
        prop_assert_eq!(&p1, &p2);
        let (b, _) = gen.instance(seed, 1);
        prop_assert!(a1 != b, "indices 0 and 1 collided for {}", family);
    }

    /// Every family builds valid model objects at random sizes (the
    /// constructors validate shapes and numeric ranges).
    #[test]
    fn prop_every_family_builds_valid_instances(
        seed in 0u64..10_000,
        n in 1usize..16,
        p in 1usize..10,
        family_idx in 0usize..ScenarioFamily::ALL.len(),
    ) {
        let family = ScenarioFamily::ALL[family_idx];
        let gen = ScenarioGenerator::new(family.params(n, p));
        let (app, pf) = gen.instance(seed, 2);
        prop_assert_eq!(app.n_stages(), n);
        prop_assert_eq!(pf.n_procs(), p);
        prop_assert!(app.total_work() >= 0.0);
        prop_assert!(pf.max_speed() > 0.0);
    }
}
