//! Property tests for the wire v1.2 verbs: `cosched` and `stats`
//! requests and their reports round-trip through format → parse for
//! arbitrary tenant counts, selectors, weights, SLOs and counter
//! values — the encoding identity the solver service's golden fixtures
//! rely on.

use pipeline_model::io::{
    format_cosched, format_report, format_stats, parse_cosched, parse_report, parse_stats,
    WireCosched, WireCoschedReport, WireReport, WireStats, WireStatsReport,
};
use proptest::prelude::*;

/// The tenant-selector pool: `None` is the wire token `-` (default
/// instance), paths carry the characters the format allows (no spaces,
/// commas or `=`).
fn selector_from(draw: usize) -> Option<String> {
    match draw % 4 {
        0 => None,
        1 => Some("a.pw".to_string()),
        2 => Some("tenants/b.pw".to_string()),
        _ => Some("zoo-3.pw".to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `format_cosched` → `parse_cosched` is the identity for every
    /// combination of selectors and the optional index-aligned vectors.
    #[test]
    fn prop_cosched_wire_round_trips(
        id in 0u64..1_000_000,
        objective_idx in 0usize..3,
        selectors in proptest::collection::vec(0usize..4, 1..5),
        with_weights in 0usize..2,
        weights in proptest::collection::vec(1e-3f64..1e3, 5),
        with_slos in 0usize..2,
        slos in proptest::collection::vec(0usize..3, 5),
        strategy_idx in 0usize..4,
        tolerance in proptest::collection::vec(1e-9f64..1.0, 1),
        with_tolerance in 0usize..2,
    ) {
        let k = selectors.len();
        let req = WireCosched {
            id,
            objective: ["max-min", "weighted-sum", "slo"][objective_idx].to_string(),
            tenants: selectors.iter().map(|&d| selector_from(d)).collect(),
            weights: (with_weights == 1).then(|| weights[..k].to_vec()),
            slos: (with_slos == 1).then(|| {
                slos[..k]
                    .iter()
                    .map(|&d| (d > 0).then(|| f64::from(d as u32) * 1.5))
                    .collect()
            }),
            strategy: ["auto", "best", "exact", "h3"][strategy_idx].to_string(),
            tolerance: (with_tolerance == 1).then(|| tolerance[0]),
        };
        let line = format_cosched(&req);
        prop_assert_eq!(parse_cosched(&line).expect("round trip"), req, "{}", line);
    }

    /// `stats` requests round-trip (the verb carries only the id).
    #[test]
    fn prop_stats_wire_round_trips(id in 0u64..u64::MAX) {
        let req = WireStats { id };
        let line = format_stats(&req);
        prop_assert_eq!(parse_stats(&line).expect("round trip"), req, "{}", line);
    }

    /// Cosched reports — partition groups, per-tenant periods, latencies
    /// and SLO verdicts — survive format → parse bit-for-bit.
    #[test]
    fn prop_cosched_reports_round_trip(
        id in 0u64..1_000_000,
        objective_idx in 0usize..3,
        score in 1e-6f64..1e6,
        tiebreak in 1e-6f64..1e6,
        group_sizes in proptest::collection::vec(1usize..4, 1..4),
        periods in proptest::collection::vec(1e-6f64..1e6, 4),
        latencies in proptest::collection::vec(1e-6f64..1e6, 4),
        slo_met_draws in proptest::collection::vec(0usize..2, 4),
    ) {
        let k = group_sizes.len();
        let slo_met: Vec<bool> = slo_met_draws.iter().map(|&d| d == 1).collect();
        // Distinct ascending processor ids per group, disjoint across
        // groups — the shape real co-schedules put on the wire.
        let mut next_proc = 0usize;
        let partition: Vec<Vec<usize>> = group_sizes
            .iter()
            .map(|&size| {
                let group: Vec<usize> = (next_proc..next_proc + size).collect();
                next_proc += size;
                group
            })
            .collect();
        let feasible = slo_met[..k].iter().all(|&m| m);
        let report = WireReport::Cosched(WireCoschedReport {
            id,
            objective: ["max-min", "weighted-sum", "slo"][objective_idx].to_string(),
            score,
            tiebreak,
            feasible,
            partition,
            periods: periods[..k].to_vec(),
            latencies: latencies[..k].to_vec(),
            slo_met: slo_met[..k].to_vec(),
        });
        let line = format_report(&report);
        prop_assert_eq!(parse_report(&line).expect("round trip"), report, "{}", line);
    }

    /// Stats reports round-trip for arbitrary counter values.
    #[test]
    fn prop_stats_reports_round_trip(
        id in 0u64..1_000_000,
        counters in proptest::collection::vec(0u64..u64::MAX, 9),
    ) {
        let report = WireReport::Stats(WireStatsReport {
            id,
            live: counters[0],
            connections: counters[1],
            rejected: counters[2],
            requests: counters[3],
            failures: counters[4],
            cache_hits: counters[5],
            cache_misses: counters[6],
            cache_evictions: counters[7],
            uptime_s: counters[8],
        });
        let line = format_report(&report);
        prop_assert_eq!(parse_report(&line).expect("round trip"), report, "{}", line);
    }
}
