//! Property-based validation of the cost model identities (eqs. 1–2)
//! against structural facts that hold for *every* mapping.

use pipeline_model::prelude::*;
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = (Application, Platform)> {
    (
        proptest::collection::vec(0.0_f64..40.0, 1..16),
        0u64..1_000_000,
        proptest::collection::vec(1.0_f64..20.0, 1..10),
        1.0_f64..20.0,
    )
        .prop_map(|(works, dseed, speeds, b)| {
            let n = works.len();
            let deltas: Vec<f64> = (0..=n)
                .map(|k| ((dseed + 31 * k as u64) % 97) as f64 / 3.0)
                .collect();
            let app = Application::new(works, deltas).expect("valid");
            let pf = Platform::comm_homogeneous(speeds, b).expect("valid");
            (app, pf)
        })
}

/// Enumerate a few deterministic mappings of an instance: single
/// interval, one-cut mappings with fastest/slowest allocation.
fn sample_mappings(app: &Application, pf: &Platform) -> Vec<IntervalMapping> {
    let mut out = vec![IntervalMapping::all_on_fastest(app, pf)];
    let order = pf.procs_by_speed_desc();
    if pf.n_procs() >= 2 {
        for cut in 1..app.n_stages() {
            for pair in [
                [order[0], order[pf.n_procs() - 1]],
                [order[pf.n_procs() - 1], order[0]],
            ] {
                out.push(
                    IntervalMapping::new(
                        app,
                        pf,
                        vec![Interval::new(0, cut), Interval::new(cut, app.n_stages())],
                        pair.to_vec(),
                    )
                    .expect("valid"),
                );
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Latency ≥ period term of any single interval... more precisely:
    /// the latency is at least the largest latency term plus the final
    /// transfer, and at least the Lemma-1 optimum; the period is at least
    /// the largest single cycle bound.
    #[test]
    fn eqs_1_2_structural_identities((app, pf) in arb_instance()) {
        let cm = CostModel::new(&app, &pf);
        let l_opt = cm.optimal_latency();
        for m in sample_mappings(&app, &pf) {
            let (p, l) = cm.evaluate(&m);
            // Period = max of cycle times (recompute by hand).
            let hand_p = (0..m.n_intervals())
                .map(|j| cm.cycle_time(&m, j))
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((p - hand_p).abs() < 1e-12);
            // Lemma 1: nothing beats the single-fastest mapping latency.
            prop_assert!(l >= l_opt - 1e-9, "latency {} beats Lemma 1 {}", l, l_opt);
            // Latency ≥ total work / fastest used processor (compute part
            // alone), plus boundary transfers.
            let comm_in = app.input_volume(0) / pf.io_bandwidth_of(m.proc_of(0));
            let comm_out = app.delta(app.n_stages())
                / pf.io_bandwidth_of(m.proc_of(m.n_intervals() - 1));
            let fastest_used =
                m.procs().iter().map(|&u| pf.speed(u)).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(
                l >= app.total_work() / fastest_used + comm_in + comm_out - 1e-9
            );
            // Period ≤ latency is NOT generally true (latency sums terms);
            // but each interval's cycle ≤ latency + its out-transfer holds;
            // check the weaker sane bound: period ≤ latency + max out-comm.
            let max_out = (0..m.n_intervals())
                .map(|j| {
                    let iv = m.intervals()[j];
                    app.output_volume(iv.end) / pf.io_bandwidth_of(m.proc_of(j))
                })
                .fold(0.0_f64, f64::max);
            prop_assert!(p <= l + max_out + 1e-9);
        }
    }

    /// Scaling laws: doubling every speed and the bandwidth halves both
    /// metrics; doubling every work and volume doubles them.
    #[test]
    fn cost_model_scaling_laws((app, pf) in arb_instance()) {
        let cm = CostModel::new(&app, &pf);
        let m = IntervalMapping::all_on_fastest(&app, &pf);
        let (p, l) = cm.evaluate(&m);

        let pf2 = Platform::comm_homogeneous(
            pf.speeds().iter().map(|s| 2.0 * s).collect(),
            2.0 * match pf.links() { LinkModel::Homogeneous(b) => *b, _ => unreachable!() },
        ).unwrap();
        let cm2 = CostModel::new(&app, &pf2);
        let m2 = IntervalMapping::all_on_fastest(&app, &pf2);
        let (p2, l2) = cm2.evaluate(&m2);
        prop_assert!((p2 - p / 2.0).abs() < 1e-9 * (1.0 + p));
        prop_assert!((l2 - l / 2.0).abs() < 1e-9 * (1.0 + l));

        let app2 = Application::new(
            app.works().iter().map(|w| 2.0 * w).collect(),
            app.deltas().iter().map(|d| 2.0 * d).collect(),
        ).unwrap();
        let cm3 = CostModel::new(&app2, &pf);
        let m3 = IntervalMapping::all_on_fastest(&app2, &pf);
        let (p3, l3) = cm3.evaluate(&m3);
        prop_assert!((p3 - 2.0 * p).abs() < 1e-9 * (1.0 + p));
        prop_assert!((l3 - 2.0 * l).abs() < 1e-9 * (1.0 + l));
    }

    /// Interval-of-stage lookup agrees with a linear scan for every
    /// sampled mapping.
    #[test]
    fn interval_lookup_agrees_with_scan((app, pf) in arb_instance()) {
        for m in sample_mappings(&app, &pf) {
            for k in 0..app.n_stages() {
                let fast = m.interval_of_stage(k);
                let slow = m
                    .intervals()
                    .iter()
                    .position(|iv| iv.contains(k));
                prop_assert_eq!(fast, slow);
            }
            prop_assert_eq!(m.interval_of_stage(app.n_stages()), None);
        }
    }
}
