//! Random instances matching the experimental setting of the paper's
//! Section 5.1.
//!
//! Common to every experiment: link bandwidth `b = 10`, processor speeds
//! drawn as integers uniform in `[1, 20]`, and four workload regimes:
//!
//! | Experiment | δ (communication)      | w (computation) |
//! |------------|------------------------|-----------------|
//! | E1         | constant 10            | U[1, 20]        |
//! | E2         | U[1, 100]              | U[1, 20]        |
//! | E3         | U[1, 20]               | U[10, 1000]     |
//! | E4         | U[1, 20]               | U[0.01, 10]     |
//!
//! The paper says values are "randomly chosen between" the bounds; only the
//! processor speeds are stated to be integers, so `δ` and `w` are drawn
//! from continuous uniforms here (documented substitution, DESIGN.md §5).
//!
//! Everything is seeded: the same [`InstanceParams`] plus the same seed
//! always regenerate the same application/platform pair, which the
//! experiment harness relies on for reproducible figures.

use crate::application::Application;
use crate::platform::Platform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The four workload regimes of the paper's Section 5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExperimentKind {
    /// Balanced communications/computations, homogeneous communications.
    E1,
    /// Balanced communications/computations, heterogeneous communications.
    E2,
    /// Computation-dominated ("large computations").
    E3,
    /// Communication-dominated ("small computations").
    E4,
}

impl ExperimentKind {
    /// All four experiments, in paper order.
    pub const ALL: [ExperimentKind; 4] = [
        ExperimentKind::E1,
        ExperimentKind::E2,
        ExperimentKind::E3,
        ExperimentKind::E4,
    ];

    /// The paper's name of the experiment.
    pub fn label(&self) -> &'static str {
        match self {
            ExperimentKind::E1 => "E1 balanced, homogeneous comms",
            ExperimentKind::E2 => "E2 balanced, heterogeneous comms",
            ExperimentKind::E3 => "E3 large computations",
            ExperimentKind::E4 => "E4 small computations",
        }
    }

    /// Communication-volume distribution `(lo, hi)`; `lo == hi` encodes the
    /// constant distribution of E1.
    pub fn delta_range(&self) -> (f64, f64) {
        match self {
            ExperimentKind::E1 => (10.0, 10.0),
            ExperimentKind::E2 => (1.0, 100.0),
            ExperimentKind::E3 | ExperimentKind::E4 => (1.0, 20.0),
        }
    }

    /// Computation-volume distribution `(lo, hi)`.
    pub fn work_range(&self) -> (f64, f64) {
        match self {
            ExperimentKind::E1 | ExperimentKind::E2 => (1.0, 20.0),
            ExperimentKind::E3 => (10.0, 1000.0),
            ExperimentKind::E4 => (0.01, 10.0),
        }
    }
}

impl std::fmt::Display for ExperimentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentKind::E1 => write!(f, "E1"),
            ExperimentKind::E2 => write!(f, "E2"),
            ExperimentKind::E3 => write!(f, "E3"),
            ExperimentKind::E4 => write!(f, "E4"),
        }
    }
}

/// Full parameterization of one random instance family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceParams {
    /// Number of pipeline stages `n`.
    pub n_stages: usize,
    /// Number of processors `p`.
    pub n_procs: usize,
    /// Workload regime.
    pub kind: ExperimentKind,
    /// Link bandwidth `b` (the paper fixes 10).
    pub bandwidth: f64,
    /// Speed distribution: integers uniform in `[lo, hi]` (paper: 1..20).
    pub speed_range: (u32, u32),
}

impl InstanceParams {
    /// The paper's setting for a given experiment/size: `b = 10`, speeds
    /// integer-uniform in `[1, 20]`.
    pub fn paper(kind: ExperimentKind, n_stages: usize, n_procs: usize) -> Self {
        InstanceParams {
            n_stages,
            n_procs,
            kind,
            bandwidth: 10.0,
            speed_range: (1, 20),
        }
    }
}

/// Seeded generator of application/platform pairs.
#[derive(Debug, Clone)]
pub struct InstanceGenerator {
    params: InstanceParams,
}

impl InstanceGenerator {
    /// Creates a generator for one instance family.
    pub fn new(params: InstanceParams) -> Self {
        assert!(params.n_stages > 0, "need at least one stage");
        assert!(params.n_procs > 0, "need at least one processor");
        assert!(params.speed_range.0 >= 1, "speeds must be positive");
        assert!(
            params.speed_range.0 <= params.speed_range.1,
            "empty speed range"
        );
        InstanceGenerator { params }
    }

    /// The generator's parameters.
    pub fn params(&self) -> &InstanceParams {
        &self.params
    }

    /// Generates the `index`-th instance of the family under `seed`.
    ///
    /// Each `(seed, index)` pair deterministically identifies one
    /// application/platform pair; the experiment harness uses indices
    /// `0..50` to reproduce the paper's "average over 50 random pairs".
    pub fn instance(&self, seed: u64, index: u64) -> (Application, Platform) {
        let mut rng = StdRng::seed_from_u64(stream_seed(seed, index));
        self.instance_with_rng(&mut rng)
    }

    /// Generates an instance from a caller-provided RNG.
    pub fn instance_with_rng<R: Rng + ?Sized>(&self, rng: &mut R) -> (Application, Platform) {
        let p = &self.params;
        let (dlo, dhi) = p.kind.delta_range();
        let (wlo, whi) = p.kind.work_range();
        let works: Vec<f64> = (0..p.n_stages)
            .map(|_| sample_uniform(rng, wlo, whi))
            .collect();
        let deltas: Vec<f64> = (0..=p.n_stages)
            .map(|_| sample_uniform(rng, dlo, dhi))
            .collect();
        let speeds: Vec<f64> = (0..p.n_procs)
            .map(|_| rng.random_range(p.speed_range.0..=p.speed_range.1) as f64)
            .collect();
        let app = Application::new(works, deltas).expect("generated apps are valid");
        let platform =
            Platform::comm_homogeneous(speeds, p.bandwidth).expect("generated platforms are valid");
        (app, platform)
    }

    /// Generates the first `count` instances of the family under `seed`.
    pub fn batch(&self, seed: u64, count: usize) -> Vec<(Application, Platform)> {
        (0..count as u64).map(|i| self.instance(seed, i)).collect()
    }
}

/// Derives the RNG seed of stream `(seed, index)` — splitmix-style mixing
/// keeps distinct `(seed, index)` pairs decorrelated even for consecutive
/// indices. Shared with the scenario-zoo generators
/// ([`crate::scenario`]), which additionally salt `seed` per family.
pub fn stream_seed(seed: u64, index: u64) -> u64 {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB)
}

/// Uniform draw from `[lo, hi)`, with `lo == hi` encoding the constant
/// distribution. Shared with the scenario-zoo generators so a change here
/// cannot silently diverge their streams from the paper families'.
pub(crate) fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    if lo == hi {
        lo
    } else {
        rng.random_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed_and_index() {
        let g = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 10, 10));
        let (a1, p1) = g.instance(42, 3);
        let (a2, p2) = g.instance(42, 3);
        assert_eq!(a1, a2);
        assert_eq!(p1, p2);
    }

    #[test]
    fn different_indices_differ() {
        let g = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 10, 10));
        let (a1, _) = g.instance(42, 0);
        let (a2, _) = g.instance(42, 1);
        assert_ne!(a1, a2);
    }

    #[test]
    fn e1_communications_are_constant_ten() {
        let g = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E1, 20, 10));
        let (app, _) = g.instance(7, 0);
        assert!(app.deltas().iter().all(|&d| d == 10.0));
        assert!(app.works().iter().all(|&w| (1.0..20.0).contains(&w)));
    }

    #[test]
    fn ranges_respected_in_all_experiments() {
        for kind in ExperimentKind::ALL {
            let g = InstanceGenerator::new(InstanceParams::paper(kind, 40, 100));
            let (dlo, dhi) = kind.delta_range();
            let (wlo, whi) = kind.work_range();
            for idx in 0..5 {
                let (app, pf) = g.instance(11, idx);
                assert_eq!(app.n_stages(), 40);
                assert_eq!(pf.n_procs(), 100);
                for &d in app.deltas() {
                    assert!(
                        d >= dlo && d <= dhi,
                        "{kind}: δ = {d} outside [{dlo},{dhi}]"
                    );
                }
                for &w in app.works() {
                    assert!(
                        w >= wlo && w <= whi,
                        "{kind}: w = {w} outside [{wlo},{whi}]"
                    );
                }
                for &s in pf.speeds() {
                    assert!((1.0..=20.0).contains(&s));
                    assert_eq!(s.fract(), 0.0, "speeds are integers");
                }
            }
        }
    }

    #[test]
    fn batch_matches_individual_instances() {
        let g = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E3, 5, 10));
        let batch = g.batch(99, 4);
        assert_eq!(batch.len(), 4);
        for (i, (app, pf)) in batch.iter().enumerate() {
            let (a, p) = g.instance(99, i as u64);
            assert_eq!(*app, a);
            assert_eq!(*pf, p);
        }
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(ExperimentKind::E3.to_string(), "E3");
        assert!(ExperimentKind::E4.label().contains("small"));
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_family_panics() {
        let mut p = InstanceParams::paper(ExperimentKind::E1, 1, 1);
        p.n_stages = 0;
        let _ = InstanceGenerator::new(p);
    }
}
