//! Small numeric helpers shared across the workspace: tolerant float
//! comparisons, prefix sums and grid generation.

/// Absolute tolerance used by the tolerant float comparisons.
///
/// The cost model only adds/divides a handful of values per interval, so a
/// tight absolute epsilon is appropriate; callers comparing quantities that
/// can grow large should prefer [`approx_le_rel`].
pub const EPS: f64 = 1e-9;

/// `a ≤ b` up to [`EPS`].
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// `a < b` by strictly more than [`EPS`].
#[inline]
pub fn definitely_lt(a: f64, b: f64) -> bool {
    a < b - EPS
}

/// `a == b` up to [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// `a ≤ b` up to a relative tolerance scaled by the magnitudes involved.
#[inline]
pub fn approx_le_rel(a: f64, b: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    a <= b + EPS * scale
}

/// `a == b` up to a relative tolerance scaled by the magnitudes involved.
#[inline]
pub fn approx_eq_rel(a: f64, b: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= EPS * scale
}

/// Inclusive prefix sums supporting O(1) range-sum queries over `f64`
/// weights.
///
/// `PrefixSums::range(i, j)` returns `Σ values[i..j]` (half-open). Sums are
/// accumulated once at construction; range queries are a single
/// subtraction, which keeps the split-exploration loops of the heuristics
/// cheap. For the value magnitudes used in this workspace (≤ ~10⁵ summed
/// over ≤ ~10³ elements) the cancellation error of the subtraction trick is
/// far below [`EPS`].
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixSums {
    acc: Vec<f64>,
}

impl PrefixSums {
    /// Builds prefix sums over `values`.
    pub fn new(values: &[f64]) -> Self {
        let mut acc = Vec::with_capacity(values.len() + 1);
        acc.push(0.0);
        let mut total = 0.0;
        for &v in values {
            total += v;
            acc.push(total);
        }
        PrefixSums { acc }
    }

    /// Number of underlying elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.acc.len() - 1
    }

    /// True when there are no underlying elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of `values[i..j]` (half-open range). Panics when `i > j` or
    /// `j > len`.
    #[inline]
    pub fn range(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i <= j && j < self.acc.len());
        self.acc[j] - self.acc[i]
    }

    /// Sum of every element.
    #[inline]
    pub fn total(&self) -> f64 {
        *self.acc.last().expect("prefix sums always hold a zero")
    }

    /// Largest `j ≥ i` such that `range(i, j) ≤ bound` (greedy maximal
    /// prefix). Elements are assumed non-negative so the range sum is
    /// monotone in `j`; found by binary search in O(log n).
    pub fn max_prefix_within(&self, i: usize, bound: f64) -> usize {
        let n = self.len();
        debug_assert!(i <= n);
        let (mut lo, mut hi) = (i, n);
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if approx_le(self.range(i, mid), bound) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

/// `count` evenly spaced values covering `[lo, hi]` inclusively.
///
/// Returns `[lo]` for `count == 1`. Panics when `count == 0` or when the
/// bounds are not finite.
pub fn linspace(lo: f64, hi: f64, count: usize) -> Vec<f64> {
    assert!(count > 0, "linspace needs at least one point");
    assert!(
        lo.is_finite() && hi.is_finite(),
        "linspace bounds must be finite"
    );
    if count == 1 {
        return vec![lo];
    }
    let step = (hi - lo) / (count - 1) as f64;
    (0..count).map(|k| lo + step * k as f64).collect()
}

/// Arithmetic mean; `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Sample standard deviation; `None` for fewer than two values.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64;
    Some(var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_sums_ranges() {
        let ps = PrefixSums::new(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(ps.len(), 4);
        assert!(approx_eq(ps.range(0, 0), 0.0));
        assert!(approx_eq(ps.range(0, 4), 10.0));
        assert!(approx_eq(ps.range(1, 3), 5.0));
        assert!(approx_eq(ps.total(), 10.0));
    }

    #[test]
    fn prefix_sums_empty() {
        let ps = PrefixSums::new(&[]);
        assert!(ps.is_empty());
        assert!(approx_eq(ps.total(), 0.0));
    }

    #[test]
    fn max_prefix_within_finds_greedy_boundary() {
        let ps = PrefixSums::new(&[3.0, 1.0, 4.0, 1.0, 5.0]);
        // From 0 with bound 8: 3+1+4 = 8 fits, +1 = 9 does not.
        assert_eq!(ps.max_prefix_within(0, 8.0), 3);
        // Bound smaller than the first element: empty prefix.
        assert_eq!(ps.max_prefix_within(0, 2.0), 0);
        // Bound covering everything.
        assert_eq!(ps.max_prefix_within(0, 100.0), 5);
        // Starting mid-array.
        assert_eq!(ps.max_prefix_within(2, 5.0), 4);
    }

    #[test]
    fn max_prefix_within_tolerates_eps() {
        let ps = PrefixSums::new(&[0.1, 0.2]);
        // 0.1 + 0.2 != 0.3 exactly in binary floating point; the tolerant
        // comparison must still accept the full prefix.
        assert_eq!(ps.max_prefix_within(0, 0.3), 2);
    }

    #[test]
    fn linspace_endpoints_and_spacing() {
        let g = linspace(2.0, 4.0, 5);
        assert_eq!(g.len(), 5);
        assert!(approx_eq(g[0], 2.0));
        assert!(approx_eq(g[4], 4.0));
        assert!(approx_eq(g[1] - g[0], 0.5));
        assert_eq!(linspace(7.0, 9.0, 1), vec![7.0]);
    }

    #[test]
    #[should_panic(expected = "at least one point")]
    fn linspace_zero_points_panics() {
        let _ = linspace(0.0, 1.0, 0);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[]), None);
        assert!(approx_eq(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0));
        assert_eq!(std_dev(&[1.0]), None);
        assert!(approx_eq(std_dev(&[1.0, 1.0, 1.0]).unwrap(), 0.0));
        assert!(approx_eq(
            std_dev(&[2.0, 4.0]).unwrap(),
            std::f64::consts::SQRT_2
        ));
    }

    #[test]
    fn tolerant_comparisons() {
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0 + EPS / 2.0, 1.0));
        assert!(!approx_le(1.0 + 10.0 * EPS, 1.0));
        assert!(definitely_lt(0.9, 1.0));
        assert!(!definitely_lt(1.0 - EPS / 2.0, 1.0));
        assert!(approx_eq_rel(1e12, 1e12 + 1e2));
        assert!(!approx_eq_rel(1e12, 1e12 + 1e6));
        assert!(approx_le_rel(1e12 + 1e2, 1e12));
    }
}
