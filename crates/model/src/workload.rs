//! Named synthetic workloads: reproducible pipeline shapes beyond the
//! paper's uniform-random E1–E4 families, used by examples, benches and
//! robustness studies.
//!
//! Each preset is deterministic given its parameters — no RNG — so
//! regressions in the schedulers show up as exact diffs.

use crate::application::Application;

/// A named pipeline shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadShape {
    /// Every stage identical — the fully balanced baseline.
    Uniform,
    /// Work ramps linearly from light to heavy (accumulating analyses).
    Ramp,
    /// One dominant stage in the middle (segmentation-style hotspot).
    Hotspot,
    /// Work alternates light/heavy (map/reduce alternation).
    Alternating,
    /// Volumes shrink geometrically along the chain (filter cascade,
    /// DataCutter-style); work proportional to the incoming volume.
    FilterCascade,
    /// Volumes grow along the chain (generation/rendering pipelines).
    Expansion,
}

impl WorkloadShape {
    /// All presets.
    pub const ALL: [WorkloadShape; 6] = [
        WorkloadShape::Uniform,
        WorkloadShape::Ramp,
        WorkloadShape::Hotspot,
        WorkloadShape::Alternating,
        WorkloadShape::FilterCascade,
        WorkloadShape::Expansion,
    ];

    /// Builds an `n`-stage application of this shape. `work_scale` sets
    /// the average per-stage work, `comm_scale` the average volume.
    /// Panics when `n == 0` or scales are not positive.
    pub fn build(&self, n: usize, work_scale: f64, comm_scale: f64) -> Application {
        assert!(n > 0, "need at least one stage");
        assert!(
            work_scale > 0.0 && comm_scale > 0.0,
            "scales must be positive"
        );
        let (works, deltas) = match self {
            WorkloadShape::Uniform => (vec![work_scale; n], vec![comm_scale; n + 1]),
            WorkloadShape::Ramp => {
                // 0.25x .. 1.75x, mean 1x.
                let works = (0..n)
                    .map(|k| {
                        let t = if n == 1 {
                            0.5
                        } else {
                            k as f64 / (n - 1) as f64
                        };
                        work_scale * (0.25 + 1.5 * t)
                    })
                    .collect();
                (works, vec![comm_scale; n + 1])
            }
            WorkloadShape::Hotspot => {
                let mid = n / 2;
                let works = (0..n)
                    .map(|k| {
                        if k == mid {
                            work_scale * (n as f64)
                        } else {
                            work_scale * 0.5
                        }
                    })
                    .collect();
                (works, vec![comm_scale; n + 1])
            }
            WorkloadShape::Alternating => {
                let works = (0..n)
                    .map(|k| {
                        if k % 2 == 0 {
                            work_scale * 0.4
                        } else {
                            work_scale * 1.6
                        }
                    })
                    .collect();
                (works, vec![comm_scale; n + 1])
            }
            WorkloadShape::FilterCascade => {
                // δ_k = comm_scale · r^k with r chosen so the last volume
                // is 5% of the first; w_k proportional to the incoming
                // volume.
                let r = if n == 1 {
                    1.0
                } else {
                    (0.05_f64).powf(1.0 / n as f64)
                };
                let deltas: Vec<f64> = (0..=n).map(|k| comm_scale * r.powi(k as i32)).collect();
                let works = (0..n)
                    .map(|k| work_scale * deltas[k] / comm_scale)
                    .collect();
                (works, deltas)
            }
            WorkloadShape::Expansion => {
                let r = if n == 1 {
                    1.0
                } else {
                    (20.0_f64).powf(1.0 / n as f64)
                };
                let deltas: Vec<f64> = (0..=n).map(|k| comm_scale * r.powi(k as i32)).collect();
                let works = (0..n)
                    .map(|k| work_scale * deltas[k + 1] / comm_scale)
                    .collect();
                (works, deltas)
            }
        };
        Application::new(works, deltas).expect("presets produce valid applications")
    }

    /// Short machine-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadShape::Uniform => "uniform",
            WorkloadShape::Ramp => "ramp",
            WorkloadShape::Hotspot => "hotspot",
            WorkloadShape::Alternating => "alternating",
            WorkloadShape::FilterCascade => "filter-cascade",
            WorkloadShape::Expansion => "expansion",
        }
    }
}

impl std::fmt::Display for WorkloadShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq_rel;

    #[test]
    fn all_presets_build_valid_applications() {
        for shape in WorkloadShape::ALL {
            for n in [1usize, 2, 7, 40] {
                let app = shape.build(n, 10.0, 5.0);
                assert_eq!(app.n_stages(), n, "{shape} n={n}");
                assert!(app.total_work() > 0.0);
                assert!(app.works().iter().all(|w| *w > 0.0));
                assert!(app.deltas().iter().all(|d| *d > 0.0));
            }
        }
    }

    #[test]
    fn uniform_is_flat() {
        let app = WorkloadShape::Uniform.build(5, 3.0, 2.0);
        assert!(app.works().iter().all(|&w| w == 3.0));
        assert!(app.deltas().iter().all(|&d| d == 2.0));
    }

    #[test]
    fn ramp_is_monotone_with_mean_scale() {
        let app = WorkloadShape::Ramp.build(9, 10.0, 1.0);
        for w in app.works().windows(2) {
            assert!(w[0] < w[1], "ramp must increase");
        }
        let mean = app.total_work() / 9.0;
        assert!(approx_eq_rel(mean, 10.0), "mean {mean} != scale");
    }

    #[test]
    fn hotspot_dominates_total_work() {
        let app = WorkloadShape::Hotspot.build(11, 4.0, 1.0);
        let max = app.works().iter().cloned().fold(0.0_f64, f64::max);
        assert!(
            max > 0.5 * app.total_work(),
            "the hotspot must hold most of the work"
        );
        assert_eq!(app.works().iter().position(|&w| w == max), Some(5));
    }

    #[test]
    fn alternating_alternates() {
        let app = WorkloadShape::Alternating.build(6, 10.0, 1.0);
        for (k, w) in app.works().iter().enumerate() {
            if k % 2 == 0 {
                assert!(*w < 10.0);
            } else {
                assert!(*w > 10.0);
            }
        }
    }

    #[test]
    fn filter_cascade_shrinks_volumes() {
        let app = WorkloadShape::FilterCascade.build(10, 10.0, 100.0);
        for d in app.deltas().windows(2) {
            assert!(d[1] < d[0], "cascade volumes must shrink");
        }
        let last = *app.deltas().last().unwrap();
        assert!(
            approx_eq_rel(last, 5.0),
            "final volume {last} should be 5% of 100"
        );
    }

    #[test]
    fn expansion_grows_volumes() {
        let app = WorkloadShape::Expansion.build(8, 10.0, 1.0);
        for d in app.deltas().windows(2) {
            assert!(d[1] > d[0], "expansion volumes must grow");
        }
        assert!(approx_eq_rel(app.delta(8), 20.0));
    }

    #[test]
    fn names_round_trip_display() {
        for shape in WorkloadShape::ALL {
            assert_eq!(shape.to_string(), shape.name());
        }
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stages_panics() {
        let _ = WorkloadShape::Uniform.build(0, 1.0, 1.0);
    }
}
