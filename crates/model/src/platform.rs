//! The target platform: heterogeneous processors, clique interconnect.

use crate::{ModelError, Result};

/// Index of a processor on its [`Platform`].
pub type ProcId = usize;

/// Interconnect description.
///
/// The paper restricts its study to *Communication Homogeneous* platforms
/// (identical link bandwidth `b` everywhere, including the links to the
/// outside world feeding stage 1 and draining stage `n`). The fully
/// heterogeneous variant is the extension discussed in the paper's
/// Section 7 and is used by `pipeline-core`'s `hetero` module.
#[derive(Debug, Clone, PartialEq)]
pub enum LinkModel {
    /// One bandwidth for every link (`b_{u,v} = b`).
    Homogeneous(f64),
    /// Per-pair bandwidths. `matrix[u][v]` is the bandwidth of
    /// `link_{u,v}`; the matrix must be square with side `p`. Diagonal
    /// entries are unused (intra-processor data passes through memory at no
    /// cost, per the interval-mapping model). `io_bandwidth` is used for
    /// the outside-world input of stage 1 and output of stage `n`.
    Heterogeneous {
        /// Pairwise link bandwidths.
        matrix: Vec<Vec<f64>>,
        /// Bandwidth to/from the outside world.
        io_bandwidth: f64,
    },
}

/// A platform of `p` processors fully interconnected as a virtual clique
/// (paper Section 2, "Target platform").
///
/// Processor `P_u` has speed `s_u`: executing `X` operations takes `X/s_u`
/// time units; sending `X` data units across `link_{u,v}` takes
/// `X / b_{u,v}` time units (linear cost model). Contention is handled by
/// the one-port model, which the analytic cost model of [`crate::cost`]
/// encodes by serializing each processor's receive/compute/send phases and
/// which `pipeline-sim` enforces operationally.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    speeds: Vec<f64>,
    links: LinkModel,
    /// Processor ids ordered by non-increasing speed (ties broken by id,
    /// so the order is deterministic). Every heuristic of the paper
    /// consumes processors in this order.
    speed_order: Vec<ProcId>,
}

impl Platform {
    /// Builds a Communication Homogeneous platform: processor speeds plus a
    /// single link bandwidth `b`.
    ///
    /// # Errors
    ///
    /// [`ModelError::EmptyPlatform`] when no speed is given, or
    /// [`ModelError::InvalidNumber`] for non-finite or non-positive speeds
    /// and bandwidths.
    pub fn comm_homogeneous(speeds: Vec<f64>, bandwidth: f64) -> Result<Self> {
        Self::validate_speeds(&speeds)?;
        Self::validate_bandwidth(bandwidth)?;
        let speed_order = Self::order_by_speed(&speeds);
        Ok(Platform {
            speeds,
            links: LinkModel::Homogeneous(bandwidth),
            speed_order,
        })
    }

    /// Builds a fully heterogeneous platform (paper §7 extension) with a
    /// pairwise bandwidth matrix and an outside-world bandwidth.
    pub fn fully_heterogeneous(
        speeds: Vec<f64>,
        matrix: Vec<Vec<f64>>,
        io_bandwidth: f64,
    ) -> Result<Self> {
        Self::validate_speeds(&speeds)?;
        Self::validate_bandwidth(io_bandwidth)?;
        if matrix.len() != speeds.len() {
            return Err(ModelError::BandwidthShapeMismatch {
                procs: speeds.len(),
                rows: matrix.len(),
            });
        }
        for row in &matrix {
            if row.len() != speeds.len() {
                return Err(ModelError::BandwidthShapeMismatch {
                    procs: speeds.len(),
                    rows: row.len(),
                });
            }
            for &b in row {
                Self::validate_bandwidth(b)?;
            }
        }
        let speed_order = Self::order_by_speed(&speeds);
        Ok(Platform {
            speeds,
            links: LinkModel::Heterogeneous {
                matrix,
                io_bandwidth,
            },
            speed_order,
        })
    }

    /// A homogeneous platform (identical speeds *and* links) — the setting
    /// of Subhlok & Vondran used as the baseline in `pipeline-core`.
    pub fn homogeneous(p: usize, speed: f64, bandwidth: f64) -> Result<Self> {
        Self::comm_homogeneous(vec![speed; p], bandwidth)
    }

    fn validate_speeds(speeds: &[f64]) -> Result<()> {
        if speeds.is_empty() {
            return Err(ModelError::EmptyPlatform);
        }
        for &s in speeds {
            if !s.is_finite() || s <= 0.0 {
                return Err(ModelError::InvalidNumber {
                    what: "processor speed",
                    value: s,
                });
            }
        }
        Ok(())
    }

    fn validate_bandwidth(b: f64) -> Result<()> {
        if !b.is_finite() || b <= 0.0 {
            return Err(ModelError::InvalidNumber {
                what: "link bandwidth",
                value: b,
            });
        }
        Ok(())
    }

    fn order_by_speed(speeds: &[f64]) -> Vec<ProcId> {
        let mut order: Vec<ProcId> = (0..speeds.len()).collect();
        order.sort_by(|&a, &b| {
            speeds[b]
                .partial_cmp(&speeds[a])
                .expect("speeds are finite")
                .then(a.cmp(&b))
        });
        order
    }

    /// Number of processors `p`.
    #[inline]
    pub fn n_procs(&self) -> usize {
        self.speeds.len()
    }

    /// Speed `s_u` of processor `u`.
    #[inline]
    pub fn speed(&self, u: ProcId) -> f64 {
        self.speeds[u]
    }

    /// All processor speeds, indexed by [`ProcId`].
    #[inline]
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// The link model.
    #[inline]
    pub fn links(&self) -> &LinkModel {
        &self.links
    }

    /// True when every link (including I/O) has the same bandwidth — the
    /// platform class the paper's heuristics are designed for.
    #[inline]
    pub fn is_comm_homogeneous(&self) -> bool {
        matches!(self.links, LinkModel::Homogeneous(_))
    }

    /// Bandwidth of the link from `u` to `v`.
    #[inline]
    pub fn bandwidth(&self, u: ProcId, v: ProcId) -> f64 {
        match &self.links {
            LinkModel::Homogeneous(b) => *b,
            LinkModel::Heterogeneous { matrix, .. } => matrix[u][v],
        }
    }

    /// Bandwidth between processor `u` and the outside world.
    #[inline]
    pub fn io_bandwidth_of(&self, _u: ProcId) -> f64 {
        match &self.links {
            LinkModel::Homogeneous(b) => *b,
            LinkModel::Heterogeneous { io_bandwidth, .. } => *io_bandwidth,
        }
    }

    /// Processor ids sorted by non-increasing speed (deterministic ties).
    #[inline]
    pub fn procs_by_speed_desc(&self) -> &[ProcId] {
        &self.speed_order
    }

    /// The fastest processor.
    #[inline]
    pub fn fastest(&self) -> ProcId {
        self.speed_order[0]
    }

    /// Largest speed on the platform.
    #[inline]
    pub fn max_speed(&self) -> f64 {
        self.speeds[self.fastest()]
    }

    /// Smallest speed on the platform.
    #[inline]
    pub fn min_speed(&self) -> f64 {
        *self
            .speed_order
            .last()
            .map(|&u| &self.speeds[u])
            .expect("non-empty")
    }

    /// Sum of every processor speed — a crude aggregate capacity used for
    /// lower bounds.
    #[inline]
    pub fn total_speed(&self) -> f64 {
        self.speeds.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq;

    #[test]
    fn speed_order_is_non_increasing_and_deterministic() {
        let pf = Platform::comm_homogeneous(vec![3.0, 9.0, 9.0, 1.0, 5.0], 10.0).unwrap();
        assert_eq!(pf.procs_by_speed_desc(), &[1, 2, 4, 0, 3]);
        assert_eq!(pf.fastest(), 1);
        assert!(approx_eq(pf.max_speed(), 9.0));
        assert!(approx_eq(pf.min_speed(), 1.0));
        assert!(approx_eq(pf.total_speed(), 27.0));
    }

    #[test]
    fn homogeneous_bandwidth_everywhere() {
        let pf = Platform::comm_homogeneous(vec![2.0, 4.0], 10.0).unwrap();
        assert!(pf.is_comm_homogeneous());
        assert!(approx_eq(pf.bandwidth(0, 1), 10.0));
        assert!(approx_eq(pf.bandwidth(1, 0), 10.0));
        assert!(approx_eq(pf.io_bandwidth_of(1), 10.0));
    }

    #[test]
    fn heterogeneous_matrix_lookup() {
        let m = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let pf = Platform::fully_heterogeneous(vec![2.0, 4.0], m, 7.0).unwrap();
        assert!(!pf.is_comm_homogeneous());
        assert!(approx_eq(pf.bandwidth(0, 1), 2.0));
        assert!(approx_eq(pf.bandwidth(1, 0), 3.0));
        assert!(approx_eq(pf.io_bandwidth_of(0), 7.0));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            Platform::comm_homogeneous(vec![], 10.0).unwrap_err(),
            ModelError::EmptyPlatform
        );
        assert!(matches!(
            Platform::comm_homogeneous(vec![0.0], 10.0).unwrap_err(),
            ModelError::InvalidNumber {
                what: "processor speed",
                ..
            }
        ));
        assert!(matches!(
            Platform::comm_homogeneous(vec![1.0], -1.0).unwrap_err(),
            ModelError::InvalidNumber {
                what: "link bandwidth",
                ..
            }
        ));
        assert!(matches!(
            Platform::fully_heterogeneous(vec![1.0, 2.0], vec![vec![1.0, 1.0]], 1.0).unwrap_err(),
            ModelError::BandwidthShapeMismatch { procs: 2, rows: 1 }
        ));
        assert!(matches!(
            Platform::fully_heterogeneous(vec![1.0], vec![vec![f64::NAN]], 1.0).unwrap_err(),
            ModelError::InvalidNumber { .. }
        ));
    }

    #[test]
    fn homogeneous_constructor() {
        let pf = Platform::homogeneous(4, 3.0, 8.0).unwrap();
        assert_eq!(pf.n_procs(), 4);
        assert!(pf.speeds().iter().all(|&s| approx_eq(s, 3.0)));
        assert_eq!(pf.procs_by_speed_desc(), &[0, 1, 2, 3]);
    }
}
