//! Application, platform, mapping and cost model for pipeline workflow
//! scheduling.
//!
//! This crate is the substrate shared by every other crate of the
//! `pipeline-workflows` workspace. It models the framework of Section 2 of
//! *"Multi-criteria scheduling of pipeline workflows"* (Benoit, Rehn-Sonigo,
//! Robert — RR-6232, CLUSTER 2007):
//!
//! * [`Application`] — a linear pipeline of `n` stages. Stage `S_k` reads
//!   `δ_{k-1}` data units, performs `w_k` operations and writes `δ_k` data
//!   units.
//! * [`Platform`] — `p` processors with heterogeneous speeds, fully
//!   interconnected. The paper's *Communication Homogeneous* platforms use a
//!   single link bandwidth `b`; the fully heterogeneous extension (paper
//!   §7) carries a bandwidth matrix.
//! * [`IntervalMapping`] — a partition of the stages into intervals of
//!   consecutive stages, each interval placed on a distinct processor.
//! * [`cost`] — the analytic cost model: period (eq. 1) and latency
//!   (eq. 2).
//! * [`generator`] — random instances matching the experimental setting of
//!   the paper's Section 5 (experiments E1–E4).
//! * [`scenario`] — the scenario zoo: a registry of instance families
//!   beyond E1–E4 (heavy-tailed speeds, clustered two-tier platforms,
//!   communication-dominant pipelines on heterogeneous links, power-law
//!   stage weights, adversarial chains-to-chains instances), all behind
//!   one seeded, deterministic interface.
//!
//! # Conventions
//!
//! Stages are indexed `1..=n` in the paper; in code we use `0..n` and the
//! communication vector `deltas` has length `n + 1` with `deltas[k]` the
//! volume *output by stage `k`* (so `deltas[0] = δ_0` is the initial input
//! read by stage 1 from the outside world and `deltas[n] = δ_n` the final
//! output). All quantities are `f64`; speeds and bandwidths must be finite
//! and strictly positive, works and volumes finite and non-negative.

pub mod application;
pub mod cost;
pub mod delta;
pub mod generator;
pub mod io;
pub mod mapping;
pub mod platform;
pub mod scenario;
pub mod util;
pub mod workload;

pub use application::Application;
pub use cost::{CostModel, IntervalCost};
pub use delta::{DeltaError, InstanceDelta};
pub use generator::{ExperimentKind, InstanceGenerator, InstanceParams};
pub use mapping::{Interval, IntervalMapping};
pub use platform::{LinkModel, Platform, ProcId};
pub use scenario::{
    DriftFamily, DriftGenerator, FamilyConfig, ScenarioFamily, ScenarioGenerator, ScenarioParams,
    TenantFamily, TenantScenario, TenantScenarioGenerator, TenantSpec,
};

/// Convenient glob import: `use pipeline_model::prelude::*;`.
pub mod prelude {
    pub use crate::application::Application;
    pub use crate::cost::{CostModel, IntervalCost};
    pub use crate::delta::{DeltaError, InstanceDelta};
    pub use crate::generator::{ExperimentKind, InstanceGenerator, InstanceParams};
    pub use crate::mapping::{Interval, IntervalMapping};
    pub use crate::platform::{LinkModel, Platform, ProcId};
    pub use crate::scenario::{
        DriftFamily, DriftGenerator, FamilyConfig, ScenarioFamily, ScenarioGenerator,
        ScenarioParams, TenantFamily, TenantScenario, TenantScenarioGenerator, TenantSpec,
    };
    pub use crate::util::{approx_eq, approx_le, EPS};
}

/// Errors raised while building or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An application must have at least one stage.
    EmptyApplication,
    /// `deltas` must have exactly `n + 1` entries for `n` stages.
    DeltaLengthMismatch {
        /// Number of stages supplied.
        stages: usize,
        /// Number of communication volumes supplied.
        deltas: usize,
    },
    /// A numeric parameter was negative, NaN or infinite.
    InvalidNumber {
        /// Which parameter was invalid.
        what: &'static str,
        /// Offending value.
        value: f64,
    },
    /// A platform must have at least one processor.
    EmptyPlatform,
    /// The bandwidth matrix of a fully heterogeneous platform must be
    /// square with side `p`.
    BandwidthShapeMismatch {
        /// Number of processors.
        procs: usize,
        /// Number of rows provided.
        rows: usize,
    },
    /// The intervals of a mapping must partition `[0, n)` left to right.
    NotAPartition {
        /// Human-readable description of the defect.
        detail: String,
    },
    /// Each interval must be placed on a distinct, existing processor.
    BadAllocation {
        /// Human-readable description of the defect.
        detail: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::EmptyApplication => write!(f, "application has no stage"),
            ModelError::DeltaLengthMismatch { stages, deltas } => write!(
                f,
                "expected {} communication volumes for {} stages, got {}",
                stages + 1,
                stages,
                deltas
            ),
            ModelError::InvalidNumber { what, value } => {
                write!(f, "invalid value {value} for {what}")
            }
            ModelError::EmptyPlatform => write!(f, "platform has no processor"),
            ModelError::BandwidthShapeMismatch { procs, rows } => write!(
                f,
                "bandwidth matrix must be {procs}x{procs}, got {rows} rows"
            ),
            ModelError::NotAPartition { detail } => {
                write!(f, "intervals do not partition the stages: {detail}")
            }
            ModelError::BadAllocation { detail } => {
                write!(f, "invalid processor allocation: {detail}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ModelError>;
