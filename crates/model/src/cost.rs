//! The analytic cost model: period (paper eq. 1) and latency (eq. 2).
//!
//! For an interval mapping with intervals `I_j = [d_j, e_j]` placed on
//! processors `alloc(j)` over a Communication Homogeneous platform with
//! bandwidth `b`:
//!
//! ```text
//! T_period  = max_j ( δ_{d_j-1}/b  +  W_j/s_alloc(j)  +  δ_{e_j}/b )
//! T_latency = Σ_j   ( δ_{d_j-1}/b  +  W_j/s_alloc(j) )  +  δ_n/b
//! ```
//!
//! where `W_j = Σ_{i∈I_j} w_i`. The period term of an interval is its
//! processor's *cycle time*: under the one-port model a processor serially
//! receives the input of one data set, computes, and forwards the output,
//! so a new data set can enter its interval only every cycle-time units.
//! The latency counts each inter-processor transfer once along the chain
//! plus the final output transfer.
//!
//! On the fully heterogeneous extension, `δ_{d_j-1}/b` generalizes to
//! `δ_{d_j-1}/b_{alloc(j-1), alloc(j)}` (and the outside-world transfers use
//! the platform's I/O bandwidth); the same functions handle both cases.

use crate::application::Application;
use crate::mapping::{Interval, IntervalMapping};
use crate::platform::{Platform, ProcId};

/// Evaluates mappings of one application on one platform.
///
/// Binds the application and platform once so the hot heuristic loops can
/// query interval costs with minimal arguments. All methods are O(1) or
/// O(m) thanks to the work prefix sums carried by [`Application`].
#[derive(Debug, Clone, Copy)]
pub struct CostModel<'a> {
    app: &'a Application,
    platform: &'a Platform,
}

/// Per-interval cost breakdown returned by [`CostModel::interval_cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalCost {
    /// Input communication time `δ_{d-1}/b_in`.
    pub t_in: f64,
    /// Computation time `W/s`.
    pub t_comp: f64,
    /// Output communication time `δ_e/b_out`.
    pub t_out: f64,
}

impl IntervalCost {
    /// Cycle time of the processor running the interval: the period
    /// contribution `t_in + t_comp + t_out`.
    #[inline]
    pub fn cycle_time(&self) -> f64 {
        self.t_in + self.t_comp + self.t_out
    }

    /// Latency contribution `t_in + t_comp` (the output transfer is
    /// charged as the next interval's input, except for the final interval
    /// whose output is charged separately as `δ_n/b`).
    #[inline]
    pub fn latency_term(&self) -> f64 {
        self.t_in + self.t_comp
    }
}

impl<'a> CostModel<'a> {
    /// Binds an application and a platform.
    pub fn new(app: &'a Application, platform: &'a Platform) -> Self {
        CostModel { app, platform }
    }

    /// The bound application.
    #[inline]
    pub fn app(&self) -> &'a Application {
        self.app
    }

    /// The bound platform.
    #[inline]
    pub fn platform(&self) -> &'a Platform {
        self.platform
    }

    /// Bandwidth used by the transfer *into* the interval starting at
    /// `start`, given the processor of the preceding interval (`None` for
    /// the outside world).
    #[inline]
    fn in_bandwidth(&self, pred: Option<ProcId>, me: ProcId) -> f64 {
        match pred {
            None => self.platform.io_bandwidth_of(me),
            Some(q) => self.platform.bandwidth(q, me),
        }
    }

    /// Bandwidth used by the transfer *out of* the interval ending at
    /// `end`, given the processor of the following interval (`None` for
    /// the outside world).
    #[inline]
    fn out_bandwidth(&self, me: ProcId, succ: Option<ProcId>) -> f64 {
        match succ {
            None => self.platform.io_bandwidth_of(me),
            Some(q) => self.platform.bandwidth(me, q),
        }
    }

    /// Cost breakdown of running `interval` on processor `u`, with
    /// `pred`/`succ` the neighbouring processors (`None` at the pipeline
    /// boundaries). On Communication Homogeneous platforms the neighbours
    /// do not change the result; they matter for the heterogeneous
    /// extension.
    pub fn interval_cost(
        &self,
        interval: Interval,
        u: ProcId,
        pred: Option<ProcId>,
        succ: Option<ProcId>,
    ) -> IntervalCost {
        let w = self.app.interval_work(interval.start, interval.end);
        IntervalCost {
            t_in: self.app.input_volume(interval.start) / self.in_bandwidth(pred, u),
            t_comp: w / self.platform.speed(u),
            t_out: self.app.output_volume(interval.end) / self.out_bandwidth(u, succ),
        }
    }

    /// Cycle time of interval `j` of `mapping` (the `max` argument of
    /// eq. 1).
    pub fn cycle_time(&self, mapping: &IntervalMapping, j: usize) -> f64 {
        let ivs = mapping.intervals();
        let pred = (j > 0).then(|| mapping.proc_of(j - 1));
        let succ = (j + 1 < ivs.len()).then(|| mapping.proc_of(j + 1));
        self.interval_cost(ivs[j], mapping.proc_of(j), pred, succ)
            .cycle_time()
    }

    /// `T_period` of the mapping (eq. 1): the largest cycle time.
    pub fn period(&self, mapping: &IntervalMapping) -> f64 {
        (0..mapping.n_intervals())
            .map(|j| self.cycle_time(mapping, j))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// `T_latency` of the mapping (eq. 2).
    pub fn latency(&self, mapping: &IntervalMapping) -> f64 {
        let m = mapping.n_intervals();
        let mut total = 0.0;
        for (j, (iv, u)) in mapping.assignments().enumerate() {
            let pred = (j > 0).then(|| mapping.proc_of(j - 1));
            let succ = (j + 1 < m).then(|| mapping.proc_of(j + 1));
            let c = self.interval_cost(iv, u, pred, succ);
            total += c.latency_term();
            if j + 1 == m {
                total += c.t_out; // final δ_n / b transfer
            }
        }
        total
    }

    /// Both metrics in one pass.
    pub fn evaluate(&self, mapping: &IntervalMapping) -> (f64, f64) {
        (self.period(mapping), self.latency(mapping))
    }

    /// The minimum achievable latency (Lemma 1): whole pipeline on the
    /// fastest processor.
    pub fn optimal_latency(&self) -> f64 {
        self.latency(&IntervalMapping::all_on_fastest(self.app, self.platform))
    }

    /// Period of the Lemma-1 mapping — the period from which every
    /// splitting heuristic starts.
    pub fn single_proc_period(&self) -> f64 {
        self.period(&IntervalMapping::all_on_fastest(self.app, self.platform))
    }

    /// A simple lower bound on the achievable period, used to bound sweeps
    /// and binary searches:
    /// `max( max_k (w_k/s_max), max transfer pair, bottleneck stage cycle )`.
    ///
    /// * any stage runs somewhere, taking at least `w_k / s_max`;
    /// * the heaviest single stage `k`, wherever it runs, pays its own
    ///   input and output transfers unless merged with neighbours, in
    ///   which case the merged interval is at least as expensive — a safe
    ///   bound is `min_over_merges` which we conservatively relax to
    ///   `w_k / s_max`;
    /// * the interval containing stage 1 pays `δ_0/b`, the one containing
    ///   stage `n` pays `δ_n/b`.
    pub fn period_lower_bound(&self) -> f64 {
        let app = self.app;
        let pf = self.platform;
        let s_max = pf.max_speed();
        // Fastest possible handling of the heaviest stage.
        let comp = app
            .works()
            .iter()
            .map(|w| w / s_max)
            .fold(0.0_f64, f64::max);
        // Whatever the mapping, δ_0 enters the platform and δ_n leaves it.
        // Under comm-homogeneous links these take δ/b; on heterogeneous
        // platforms, use the best I/O bandwidth available.
        let b_io: f64 = (0..pf.n_procs())
            .map(|u| pf.io_bandwidth_of(u))
            .fold(f64::NEG_INFINITY, f64::max);
        let first = app.delta(0) / b_io + app.work(0) / s_max;
        let last = app.delta(app.n_stages()) / b_io + app.work(app.n_stages() - 1) / s_max;
        comp.max(first).max(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::{approx_eq, approx_eq_rel};

    /// Hand-computed example: 3 stages, w = [4, 8, 2], δ = [2, 6, 4, 10],
    /// speeds = [2, 4], b = 2.
    fn setup() -> (Application, Platform) {
        let app = Application::new(vec![4.0, 8.0, 2.0], vec![2.0, 6.0, 4.0, 10.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![2.0, 4.0], 2.0).unwrap();
        (app, pf)
    }

    #[test]
    fn single_interval_costs() {
        let (app, pf) = setup();
        let cm = CostModel::new(&app, &pf);
        let m = IntervalMapping::all_on_fastest(&app, &pf);
        // Everything on P1 (speed 4): period = 2/2 + 14/4 + 10/2 = 9.5
        assert!(approx_eq(cm.period(&m), 9.5));
        // latency = 2/2 + 14/4 + 10/2 = 9.5 as well (one interval).
        assert!(approx_eq(cm.latency(&m), 9.5));
        assert!(approx_eq(cm.optimal_latency(), 9.5));
        assert!(approx_eq(cm.single_proc_period(), 9.5));
    }

    #[test]
    fn two_interval_costs_match_hand_computation() {
        let (app, pf) = setup();
        let cm = CostModel::new(&app, &pf);
        let m = IntervalMapping::new(
            &app,
            &pf,
            vec![Interval::new(0, 2), Interval::new(2, 3)],
            vec![1, 0],
        )
        .unwrap();
        // Interval 1 = stages {1,2} on P1 (speed 4):
        //   t_in = δ0/b = 1, t_comp = 12/4 = 3, t_out = δ2/b = 2 → cycle 6.
        // Interval 2 = stage {3} on P0 (speed 2):
        //   t_in = δ2/b = 2, t_comp = 2/2 = 1, t_out = δ3/b = 5 → cycle 8.
        assert!(approx_eq(cm.cycle_time(&m, 0), 6.0));
        assert!(approx_eq(cm.cycle_time(&m, 1), 8.0));
        assert!(approx_eq(cm.period(&m), 8.0));
        // latency = (1 + 3) + (2 + 1) + δ3/b = 4 + 3 + 5 = 12.
        assert!(approx_eq(cm.latency(&m), 12.0));
        let (p, l) = cm.evaluate(&m);
        assert!(approx_eq(p, 8.0) && approx_eq(l, 12.0));
    }

    #[test]
    fn latency_of_one_interval_equals_its_cycle_time() {
        // With a single interval, eq. 2 degenerates to eq. 1.
        let (app, pf) = setup();
        let cm = CostModel::new(&app, &pf);
        let m = IntervalMapping::all_on_fastest(&app, &pf);
        assert!(approx_eq(cm.period(&m), cm.latency(&m)));
    }

    #[test]
    fn splitting_never_reduces_latency_on_comm_homogeneous() {
        // Lemma 1: latency of any mapping ≥ optimal latency.
        let (app, pf) = setup();
        let cm = CostModel::new(&app, &pf);
        for cut in 1..3 {
            for (a, b) in [(0, 1), (1, 0)] {
                let m = IntervalMapping::new(
                    &app,
                    &pf,
                    vec![Interval::new(0, cut), Interval::new(cut, 3)],
                    vec![a, b],
                )
                .unwrap();
                assert!(
                    cm.latency(&m) >= cm.optimal_latency() - 1e-12,
                    "mapping {m} beats the Lemma-1 latency"
                );
            }
        }
    }

    #[test]
    fn period_lower_bound_is_a_lower_bound() {
        let (app, pf) = setup();
        let cm = CostModel::new(&app, &pf);
        let lb = cm.period_lower_bound();
        // Exhaustive over all 4 partitions × assignments of this tiny case.
        let mut best = f64::INFINITY;
        for cut1 in 1..=3usize {
            for cut2 in cut1..=3usize {
                let mut ivs = vec![];
                let mut bounds = vec![0, cut1, cut2, 3];
                bounds.dedup();
                for w in bounds.windows(2) {
                    ivs.push(Interval::new(w[0], w[1]));
                }
                let m_ivs = ivs.len();
                if m_ivs > 2 {
                    continue;
                }
                let assignments: Vec<Vec<usize>> = if m_ivs == 1 {
                    vec![vec![0], vec![1]]
                } else {
                    vec![vec![0, 1], vec![1, 0]]
                };
                for procs in assignments {
                    let m = IntervalMapping::new(&app, &pf, ivs.clone(), procs).unwrap();
                    best = best.min(cm.period(&m));
                }
            }
        }
        assert!(
            lb <= best + 1e-12,
            "lower bound {lb} exceeds optimum {best}"
        );
    }

    #[test]
    fn heterogeneous_links_change_transfer_costs() {
        let app = Application::new(vec![4.0, 4.0], vec![8.0, 8.0, 8.0]).unwrap();
        // Link 0→1 has bandwidth 1 (slow), 1→0 bandwidth 4; I/O bandwidth 8.
        let pf = Platform::fully_heterogeneous(
            vec![2.0, 2.0],
            vec![vec![1.0, 1.0], vec![4.0, 1.0]],
            8.0,
        )
        .unwrap();
        let cm = CostModel::new(&app, &pf);
        let m01 = IntervalMapping::new(
            &app,
            &pf,
            vec![Interval::new(0, 1), Interval::new(1, 2)],
            vec![0, 1],
        )
        .unwrap();
        // Interval 1 on P0: t_in = 8/8 = 1, t_comp = 2, t_out = 8/b_{0,1} = 8.
        assert!(approx_eq_rel(cm.cycle_time(&m01, 0), 11.0));
        // Interval 2 on P1: t_in = 8, t_comp = 2, t_out = 8/8 = 1.
        assert!(approx_eq_rel(cm.cycle_time(&m01, 1), 11.0));
        let m10 = IntervalMapping::new(
            &app,
            &pf,
            vec![Interval::new(0, 1), Interval::new(1, 2)],
            vec![1, 0],
        )
        .unwrap();
        // Reversed allocation uses the fast 1→0 link: t_out = 8/4 = 2.
        assert!(approx_eq_rel(cm.cycle_time(&m10, 0), 1.0 + 2.0 + 2.0));
        assert!(cm.period(&m10) < cm.period(&m01));
    }

    #[test]
    fn zero_communication_reduces_to_pure_partitioning() {
        // With δ ≡ 0 the period is exactly the Hetero-1D-Partition
        // objective (Theorem 2's reduction).
        let app = Application::new(vec![3.0, 5.0, 2.0], vec![0.0; 4]).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0], 1.0).unwrap();
        let cm = CostModel::new(&app, &pf);
        let m = IntervalMapping::new(
            &app,
            &pf,
            vec![Interval::new(0, 2), Interval::new(2, 3)],
            vec![1, 0],
        )
        .unwrap();
        assert!(approx_eq(cm.period(&m), 8.0 / 2.0)); // max(8/2, 2/1)
        assert!(approx_eq(cm.latency(&m), 8.0 / 2.0 + 2.0));
    }
}
