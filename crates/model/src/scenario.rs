//! The scenario zoo: a registry of random instance families.
//!
//! The paper's experiments E1–E4 ([`crate::generator`]) sample uniform
//! random workloads on Communication Homogeneous platforms. The stream
//! workflow literature motivates far more diverse workloads — heavy-tailed
//! processor speeds, clustered two-tier platforms, communication-dominant
//! pipelines on heterogeneous links, power-law stage weights, and
//! adversarial chains-to-chains instances. This module registers them all
//! behind one uniform interface:
//!
//! * [`ScenarioFamily`] — the registry: every family has a **stable
//!   label** (`"e1"` … `"adversarial"`), a one-line description of what
//!   it stresses, and a default parameterization;
//! * per-family **parameter structs** ([`HeavyTailConfig`],
//!   [`TwoTierConfig`], [`CommDominantConfig`], [`PowerLawWorkConfig`],
//!   [`AdversarialConfig`]) collected in [`FamilyConfig`];
//! * [`ScenarioGenerator`] — seeded, deterministic instance generation:
//!   `instance(seed, i)` always regenerates the same application/platform
//!   pair, and distinct `(family, seed, i)` triples are decorrelated by
//!   per-family stream salts.
//!
//! The four paper families delegate to [`InstanceGenerator`], so
//! `ScenarioFamily::E2` reproduces the legacy E2 stream *bit for bit* —
//! experiment seeds stay valid across the refactor (tested in
//! `tests/scenario_props.rs`).
//!
//! | label | platform links | what it stresses |
//! |----------------|---------------|---------------------------------------------|
//! | `e1`…`e4` | homogeneous | the paper's Section 5 regimes |
//! | `heavy-tail` | homogeneous | few very fast processors (Pareto/Zipf speeds)|
//! | `two-tier` | heterogeneous | clustered platforms, slow inter-cluster links|
//! | `comm-dominant`| heterogeneous | transfers dwarf computation, per-link b/w |
//! | `power-law` | homogeneous | a few dominant stages (Pareto stage weights) |
//! | `adversarial` | homogeneous | NMWTS-style knife-edge partitioning ties |

use crate::application::Application;
use crate::delta::InstanceDelta;
use crate::generator::{
    sample_uniform, stream_seed, ExperimentKind, InstanceGenerator, InstanceParams,
};
use crate::platform::Platform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stable identifier of a registered scenario family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// Paper E1: balanced comms/comp, constant communication volumes.
    E1,
    /// Paper E2: balanced comms/comp, heterogeneous communication volumes.
    E2,
    /// Paper E3: computation-dominated.
    E3,
    /// Paper E4: communication-dominated (homogeneous links).
    E4,
    /// Heavy-tailed (bounded-Pareto/Zipf) processor speeds: most
    /// processors are slow, a few are very fast.
    HeavyTail,
    /// Clustered two-tier platform: a small fast cluster and a large slow
    /// one, fast intra-cluster links, slow inter-cluster links
    /// (heterogeneous [`crate::LinkModel`]).
    TwoTier,
    /// Communication-dominant pipeline on fully heterogeneous links:
    /// transfer volumes dwarf computation.
    CommDominant,
    /// Power-law (bounded-Pareto) stage weights: a few dominant stages.
    PowerLawWork,
    /// Degenerate NMWTS-style instances: identical unit-speed processors,
    /// zero communication, power-of-two stage works — period minimization
    /// collapses to chains-to-chains partitioning with knife-edge ties.
    Adversarial,
}

impl ScenarioFamily {
    /// Every registered family, paper families first.
    pub const ALL: [ScenarioFamily; 9] = [
        ScenarioFamily::E1,
        ScenarioFamily::E2,
        ScenarioFamily::E3,
        ScenarioFamily::E4,
        ScenarioFamily::HeavyTail,
        ScenarioFamily::TwoTier,
        ScenarioFamily::CommDominant,
        ScenarioFamily::PowerLawWork,
        ScenarioFamily::Adversarial,
    ];

    /// Stable machine-readable label (CLI/CSV/CI key).
    pub fn label(&self) -> &'static str {
        match self {
            ScenarioFamily::E1 => "e1",
            ScenarioFamily::E2 => "e2",
            ScenarioFamily::E3 => "e3",
            ScenarioFamily::E4 => "e4",
            ScenarioFamily::HeavyTail => "heavy-tail",
            ScenarioFamily::TwoTier => "two-tier",
            ScenarioFamily::CommDominant => "comm-dominant",
            ScenarioFamily::PowerLawWork => "power-law",
            ScenarioFamily::Adversarial => "adversarial",
        }
    }

    /// Looks a family up by its stable label (case-insensitive).
    pub fn from_label(label: &str) -> Option<ScenarioFamily> {
        let needle = label.to_ascii_lowercase();
        ScenarioFamily::ALL
            .into_iter()
            .find(|f| f.label() == needle)
    }

    /// One line on what the family stresses.
    pub fn stresses(&self) -> &'static str {
        match self {
            ScenarioFamily::E1 => "balanced comms/comp, constant volumes (paper E1)",
            ScenarioFamily::E2 => "balanced comms/comp, mixed volumes (paper E2)",
            ScenarioFamily::E3 => "computation-dominated stages (paper E3)",
            ScenarioFamily::E4 => "communication-dominated stages (paper E4)",
            ScenarioFamily::HeavyTail => "a few very fast processors among many slow ones",
            ScenarioFamily::TwoTier => "clustered platforms with slow inter-cluster links",
            ScenarioFamily::CommDominant => "transfers dwarfing computation on per-link bandwidths",
            ScenarioFamily::PowerLawWork => "a few dominant stages in an otherwise light pipeline",
            ScenarioFamily::Adversarial => "knife-edge chains-to-chains partitioning ties",
        }
    }

    /// True when every instance of the family lives on a Communication
    /// Homogeneous platform — the class the paper's six heuristics (and
    /// the exact solver) are defined for. The other families need the
    /// §7 heterogeneous extension.
    pub fn comm_homogeneous(&self) -> bool {
        !matches!(self, ScenarioFamily::TwoTier | ScenarioFamily::CommDominant)
    }

    /// Default parameterization of the family at a given size.
    pub fn params(&self, n_stages: usize, n_procs: usize) -> ScenarioParams {
        let config = match self {
            ScenarioFamily::E1 => FamilyConfig::paper(ExperimentKind::E1),
            ScenarioFamily::E2 => FamilyConfig::paper(ExperimentKind::E2),
            ScenarioFamily::E3 => FamilyConfig::paper(ExperimentKind::E3),
            ScenarioFamily::E4 => FamilyConfig::paper(ExperimentKind::E4),
            ScenarioFamily::HeavyTail => FamilyConfig::HeavyTail(HeavyTailConfig::default()),
            ScenarioFamily::TwoTier => FamilyConfig::TwoTier(TwoTierConfig::default()),
            ScenarioFamily::CommDominant => {
                FamilyConfig::CommDominant(CommDominantConfig::default())
            }
            ScenarioFamily::PowerLawWork => {
                FamilyConfig::PowerLawWork(PowerLawWorkConfig::default())
            }
            ScenarioFamily::Adversarial => FamilyConfig::Adversarial(AdversarialConfig::default()),
        };
        ScenarioParams {
            n_stages,
            n_procs,
            config,
        }
    }

    /// Per-family stream salt, mixed into the seed so the same seed draws
    /// decorrelated streams across families. Paper families use salt 0:
    /// their streams must stay bit-identical to the legacy
    /// [`InstanceGenerator`].
    fn salt(&self) -> u64 {
        match self {
            ScenarioFamily::E1 | ScenarioFamily::E2 | ScenarioFamily::E3 | ScenarioFamily::E4 => 0,
            ScenarioFamily::HeavyTail => 0x6865_6176_795F_7461, // "heavy_ta"
            ScenarioFamily::TwoTier => 0x7477_6F5F_7469_6572,   // "two_tier"
            ScenarioFamily::CommDominant => 0x636F_6D6D_5F64_6F6D, // "comm_dom"
            ScenarioFamily::PowerLawWork => 0x706F_7765_725F_6C61, // "power_la"
            ScenarioFamily::Adversarial => 0x6164_7665_7273_6172, // "adversar"
        }
    }
}

impl std::fmt::Display for ScenarioFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Knobs of the [`ScenarioFamily::HeavyTail`] family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyTailConfig {
    /// Pareto tail exponent of the speed distribution (smaller = heavier
    /// tail).
    pub alpha: f64,
    /// Support `[lo, hi]` of the bounded-Pareto speed draw.
    pub speed_range: (f64, f64),
    /// Uniform stage-work range.
    pub work_range: (f64, f64),
    /// Uniform communication-volume range.
    pub delta_range: (f64, f64),
    /// Homogeneous link bandwidth.
    pub bandwidth: f64,
}

impl Default for HeavyTailConfig {
    fn default() -> Self {
        HeavyTailConfig {
            alpha: 1.2,
            speed_range: (1.0, 100.0),
            work_range: (1.0, 20.0),
            delta_range: (1.0, 20.0),
            bandwidth: 10.0,
        }
    }
}

/// Knobs of the [`ScenarioFamily::TwoTier`] family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoTierConfig {
    /// Fraction of processors in the fast cluster (rounded, clamped to
    /// `[1, p]`).
    pub fast_fraction: f64,
    /// Integer-uniform speed range of the fast cluster.
    pub fast_speed: (u32, u32),
    /// Integer-uniform speed range of the slow cluster.
    pub slow_speed: (u32, u32),
    /// Bandwidth of links inside a cluster.
    pub intra_bandwidth: f64,
    /// Bandwidth of links between the clusters (and to the outside
    /// world).
    pub inter_bandwidth: f64,
    /// Uniform stage-work range.
    pub work_range: (f64, f64),
    /// Uniform communication-volume range.
    pub delta_range: (f64, f64),
}

impl Default for TwoTierConfig {
    fn default() -> Self {
        TwoTierConfig {
            fast_fraction: 0.25,
            fast_speed: (15, 30),
            slow_speed: (1, 5),
            intra_bandwidth: 100.0,
            inter_bandwidth: 5.0,
            work_range: (1.0, 20.0),
            delta_range: (1.0, 20.0),
        }
    }
}

/// Knobs of the [`ScenarioFamily::CommDominant`] family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommDominantConfig {
    /// Uniform communication-volume range (large by design).
    pub delta_range: (f64, f64),
    /// Uniform stage-work range (small by design).
    pub work_range: (f64, f64),
    /// Uniform per-link bandwidth range (each unordered processor pair
    /// draws one symmetric bandwidth; the I/O links draw another).
    pub bandwidth_range: (f64, f64),
    /// Integer-uniform processor-speed range.
    pub speed_range: (u32, u32),
}

impl Default for CommDominantConfig {
    fn default() -> Self {
        CommDominantConfig {
            delta_range: (50.0, 200.0),
            work_range: (0.01, 5.0),
            bandwidth_range: (1.0, 10.0),
            speed_range: (1, 20),
        }
    }
}

/// Knobs of the [`ScenarioFamily::PowerLawWork`] family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerLawWorkConfig {
    /// Pareto tail exponent of the stage-work distribution.
    pub alpha: f64,
    /// Support `[lo, hi]` of the bounded-Pareto work draw.
    pub work_range: (f64, f64),
    /// Uniform communication-volume range.
    pub delta_range: (f64, f64),
    /// Integer-uniform processor-speed range.
    pub speed_range: (u32, u32),
    /// Homogeneous link bandwidth.
    pub bandwidth: f64,
}

impl Default for PowerLawWorkConfig {
    fn default() -> Self {
        PowerLawWorkConfig {
            alpha: 1.1,
            work_range: (1.0, 1000.0),
            delta_range: (1.0, 20.0),
            speed_range: (1, 20),
            bandwidth: 10.0,
        }
    }
}

/// Knobs of the [`ScenarioFamily::Adversarial`] family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdversarialConfig {
    /// Stage works are `2^e` with `e` integer-uniform in
    /// `[0, max_exponent]`.
    pub max_exponent: u32,
    /// Homogeneous link bandwidth (volumes are zero, so it only has to be
    /// valid).
    pub bandwidth: f64,
}

impl Default for AdversarialConfig {
    fn default() -> Self {
        AdversarialConfig {
            max_exponent: 6,
            bandwidth: 10.0,
        }
    }
}

/// Family-specific parameters, one variant per registered family class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FamilyConfig {
    /// One of the paper's E1–E4 regimes (same knobs as
    /// [`InstanceParams`]).
    Paper {
        /// Workload regime.
        kind: ExperimentKind,
        /// Homogeneous link bandwidth.
        bandwidth: f64,
        /// Integer-uniform processor-speed range.
        speed_range: (u32, u32),
    },
    /// Heavy-tailed processor speeds.
    HeavyTail(HeavyTailConfig),
    /// Clustered two-tier platform.
    TwoTier(TwoTierConfig),
    /// Communication-dominant pipeline on heterogeneous links.
    CommDominant(CommDominantConfig),
    /// Power-law stage weights.
    PowerLawWork(PowerLawWorkConfig),
    /// Degenerate NMWTS-style instances.
    Adversarial(AdversarialConfig),
}

impl FamilyConfig {
    /// The paper's setting for one experiment regime.
    pub fn paper(kind: ExperimentKind) -> FamilyConfig {
        FamilyConfig::Paper {
            kind,
            bandwidth: 10.0,
            speed_range: (1, 20),
        }
    }

    /// The family this configuration belongs to.
    pub fn family(&self) -> ScenarioFamily {
        match self {
            FamilyConfig::Paper { kind, .. } => match kind {
                ExperimentKind::E1 => ScenarioFamily::E1,
                ExperimentKind::E2 => ScenarioFamily::E2,
                ExperimentKind::E3 => ScenarioFamily::E3,
                ExperimentKind::E4 => ScenarioFamily::E4,
            },
            FamilyConfig::HeavyTail(_) => ScenarioFamily::HeavyTail,
            FamilyConfig::TwoTier(_) => ScenarioFamily::TwoTier,
            FamilyConfig::CommDominant(_) => ScenarioFamily::CommDominant,
            FamilyConfig::PowerLawWork(_) => ScenarioFamily::PowerLawWork,
            FamilyConfig::Adversarial(_) => ScenarioFamily::Adversarial,
        }
    }
}

/// Full parameterization of one scenario instance family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioParams {
    /// Number of pipeline stages `n`.
    pub n_stages: usize,
    /// Number of processors `p`.
    pub n_procs: usize,
    /// Family-specific knobs.
    pub config: FamilyConfig,
}

impl ScenarioParams {
    /// The registry's default parameterization of `family` at the given
    /// size — shorthand for [`ScenarioFamily::params`].
    pub fn preset(family: ScenarioFamily, n_stages: usize, n_procs: usize) -> Self {
        family.params(n_stages, n_procs)
    }

    /// The family of this parameterization.
    pub fn family(&self) -> ScenarioFamily {
        self.config.family()
    }
}

/// Seeded generator of application/platform pairs for any registered
/// family. The scenario-zoo counterpart of [`InstanceGenerator`] — for
/// the paper families it *is* the legacy generator (delegation, identical
/// streams).
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    params: ScenarioParams,
}

impl ScenarioGenerator {
    /// Creates a generator, validating the family knobs.
    pub fn new(params: ScenarioParams) -> Self {
        assert!(params.n_stages > 0, "need at least one stage");
        assert!(params.n_procs > 0, "need at least one processor");
        match &params.config {
            FamilyConfig::Paper {
                bandwidth,
                speed_range,
                ..
            } => {
                assert!(*bandwidth > 0.0, "bandwidth must be positive");
                assert!(speed_range.0 >= 1, "speeds must be positive");
                assert!(speed_range.0 <= speed_range.1, "empty speed range");
            }
            FamilyConfig::HeavyTail(c) => {
                assert!(c.alpha > 0.0, "tail exponent must be positive");
                validate_range("speed", c.speed_range, 1e-9);
                validate_range("work", c.work_range, 0.0);
                validate_range("delta", c.delta_range, 0.0);
                assert!(c.bandwidth > 0.0, "bandwidth must be positive");
            }
            FamilyConfig::TwoTier(c) => {
                assert!(
                    c.fast_fraction > 0.0 && c.fast_fraction <= 1.0,
                    "fast fraction must be in (0, 1]"
                );
                assert!(c.fast_speed.0 >= 1 && c.fast_speed.0 <= c.fast_speed.1);
                assert!(c.slow_speed.0 >= 1 && c.slow_speed.0 <= c.slow_speed.1);
                assert!(c.intra_bandwidth > 0.0 && c.inter_bandwidth > 0.0);
                validate_range("work", c.work_range, 0.0);
                validate_range("delta", c.delta_range, 0.0);
            }
            FamilyConfig::CommDominant(c) => {
                validate_range("delta", c.delta_range, 0.0);
                validate_range("work", c.work_range, 0.0);
                validate_range("bandwidth", c.bandwidth_range, 1e-9);
                assert!(c.speed_range.0 >= 1 && c.speed_range.0 <= c.speed_range.1);
            }
            FamilyConfig::PowerLawWork(c) => {
                assert!(c.alpha > 0.0, "tail exponent must be positive");
                validate_range("work", c.work_range, 1e-9);
                validate_range("delta", c.delta_range, 0.0);
                assert!(c.speed_range.0 >= 1 && c.speed_range.0 <= c.speed_range.1);
                assert!(c.bandwidth > 0.0, "bandwidth must be positive");
            }
            FamilyConfig::Adversarial(c) => {
                assert!(c.max_exponent <= 52, "2^e must stay exact in f64");
                assert!(c.bandwidth > 0.0, "bandwidth must be positive");
            }
        }
        ScenarioGenerator { params }
    }

    /// The generator's parameters.
    pub fn params(&self) -> &ScenarioParams {
        &self.params
    }

    /// The family being generated.
    pub fn family(&self) -> ScenarioFamily {
        self.params.family()
    }

    /// The family's stable label.
    pub fn label(&self) -> &'static str {
        self.family().label()
    }

    /// Generates the `index`-th instance of the family under `seed`.
    /// Deterministic: the same `(params, seed, index)` always regenerates
    /// the same pair, and each index is its own decorrelated RNG stream —
    /// which is what lets the sharded sweep engine generate instances
    /// inside worker shards in any order.
    pub fn instance(&self, seed: u64, index: u64) -> (Application, Platform) {
        let p = &self.params;
        match &p.config {
            FamilyConfig::Paper {
                kind,
                bandwidth,
                speed_range,
            } => {
                // Delegate so paper-family streams stay bit-identical to
                // the legacy generator.
                let legacy = InstanceGenerator::new(InstanceParams {
                    n_stages: p.n_stages,
                    n_procs: p.n_procs,
                    kind: *kind,
                    bandwidth: *bandwidth,
                    speed_range: *speed_range,
                });
                legacy.instance(seed, index)
            }
            config => {
                let salt = self.family().salt();
                let mut rng = StdRng::seed_from_u64(stream_seed(seed ^ salt, index));
                self.sample(config, &mut rng)
            }
        }
    }

    /// Generates the first `count` instances of the family under `seed`.
    pub fn batch(&self, seed: u64, count: usize) -> Vec<(Application, Platform)> {
        (0..count as u64).map(|i| self.instance(seed, i)).collect()
    }

    fn sample<R: Rng + ?Sized>(
        &self,
        config: &FamilyConfig,
        rng: &mut R,
    ) -> (Application, Platform) {
        let n = self.params.n_stages;
        let p = self.params.n_procs;
        match config {
            FamilyConfig::Paper { .. } => unreachable!("paper families delegate"),
            FamilyConfig::HeavyTail(c) => {
                let works = sample_vec(rng, n, c.work_range);
                let deltas = sample_vec(rng, n + 1, c.delta_range);
                let speeds: Vec<f64> = (0..p)
                    .map(|_| bounded_pareto(rng, c.alpha, c.speed_range.0, c.speed_range.1))
                    .collect();
                let app = Application::new(works, deltas).expect("valid application");
                let pf = Platform::comm_homogeneous(speeds, c.bandwidth).expect("valid platform");
                (app, pf)
            }
            FamilyConfig::TwoTier(c) => {
                let works = sample_vec(rng, n, c.work_range);
                let deltas = sample_vec(rng, n + 1, c.delta_range);
                let n_fast = ((p as f64 * c.fast_fraction).round() as usize).clamp(1, p);
                let speeds: Vec<f64> = (0..p)
                    .map(|u| {
                        let (lo, hi) = if u < n_fast {
                            c.fast_speed
                        } else {
                            c.slow_speed
                        };
                        rng.random_range(lo..=hi) as f64
                    })
                    .collect();
                let matrix: Vec<Vec<f64>> = (0..p)
                    .map(|u| {
                        (0..p)
                            .map(|v| {
                                if (u < n_fast) == (v < n_fast) {
                                    c.intra_bandwidth
                                } else {
                                    c.inter_bandwidth
                                }
                            })
                            .collect()
                    })
                    .collect();
                let app = Application::new(works, deltas).expect("valid application");
                let pf = Platform::fully_heterogeneous(speeds, matrix, c.inter_bandwidth)
                    .expect("valid platform");
                (app, pf)
            }
            FamilyConfig::CommDominant(c) => {
                let works = sample_vec(rng, n, c.work_range);
                let deltas = sample_vec(rng, n + 1, c.delta_range);
                let speeds: Vec<f64> = (0..p)
                    .map(|_| rng.random_range(c.speed_range.0..=c.speed_range.1) as f64)
                    .collect();
                // Symmetric link draws: one bandwidth per unordered pair,
                // drawn in row-major upper-triangle order.
                let upper: Vec<f64> = (0..p * p.saturating_sub(1) / 2)
                    .map(|_| sample_uniform(rng, c.bandwidth_range.0, c.bandwidth_range.1))
                    .collect();
                let pair = |u: usize, v: usize| {
                    let (a, b) = if u < v { (u, v) } else { (v, u) };
                    // Row offset Σ_{k<a}(p-1-k) = a(2p-a-1)/2, then column.
                    a * (2 * p - a - 1) / 2 + (b - a - 1)
                };
                let matrix: Vec<Vec<f64>> = (0..p)
                    .map(|u| {
                        (0..p)
                            .map(|v| {
                                // Diagonal entries are unused by the model.
                                if u == v {
                                    c.bandwidth_range.1
                                } else {
                                    upper[pair(u, v)]
                                }
                            })
                            .collect()
                    })
                    .collect();
                let io = sample_uniform(rng, c.bandwidth_range.0, c.bandwidth_range.1);
                let app = Application::new(works, deltas).expect("valid application");
                let pf = Platform::fully_heterogeneous(speeds, matrix, io).expect("valid platform");
                (app, pf)
            }
            FamilyConfig::PowerLawWork(c) => {
                let works: Vec<f64> = (0..n)
                    .map(|_| bounded_pareto(rng, c.alpha, c.work_range.0, c.work_range.1))
                    .collect();
                let deltas = sample_vec(rng, n + 1, c.delta_range);
                let speeds: Vec<f64> = (0..p)
                    .map(|_| rng.random_range(c.speed_range.0..=c.speed_range.1) as f64)
                    .collect();
                let app = Application::new(works, deltas).expect("valid application");
                let pf = Platform::comm_homogeneous(speeds, c.bandwidth).expect("valid platform");
                (app, pf)
            }
            FamilyConfig::Adversarial(c) => {
                let works: Vec<f64> = (0..n)
                    .map(|_| f64::from(1u32 << rng.random_range(0..=c.max_exponent)))
                    .collect();
                let deltas = vec![0.0; n + 1];
                let speeds = vec![1.0; p];
                let app = Application::new(works, deltas).expect("valid application");
                let pf = Platform::comm_homogeneous(speeds, c.bandwidth).expect("valid platform");
                (app, pf)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Drifting scenarios: an instance plus a deterministic update stream.
//
// The static zoo above answers "what does the platform look like?"; the
// drift registry answers "how does it *change* while the service is
// running?". Each drift family pairs a base instance (a paper-E2 draw,
// so the full heuristic/exact stack applies) with a seeded stream of
// `InstanceDelta`s that stays valid when applied in order — every prefix
// of the stream is a valid instance. The session layer's incremental
// re-solve (`PreparedInstance::apply`) and `pwsched bench-delta` replay
// these streams.
// ---------------------------------------------------------------------------

/// Stable identifier of a registered drift family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DriftFamily {
    /// One processor's speed drifts multiplicatively (thermal envelopes,
    /// co-tenants, DVFS): every update rescales the *slowest* base
    /// processor by a factor in `[0.5, 2]`.
    SpeedDrift,
    /// One stage's computational weight drifts per release: every update
    /// rescales a random stage's work by a factor in `[0.5, 2]`.
    WeightDrift,
    /// Processors churn: arrivals (random speed) alternate with
    /// departures of the most recently arrived processor, so the
    /// platform never shrinks below its base size.
    Churn,
}

impl DriftFamily {
    /// Every registered drift family.
    pub const ALL: [DriftFamily; 3] = [
        DriftFamily::SpeedDrift,
        DriftFamily::WeightDrift,
        DriftFamily::Churn,
    ];

    /// Stable machine-readable label (CLI/CSV/CI key).
    pub fn label(&self) -> &'static str {
        match self {
            DriftFamily::SpeedDrift => "speed-drift",
            DriftFamily::WeightDrift => "weight-drift",
            DriftFamily::Churn => "churn",
        }
    }

    /// Looks a drift family up by its stable label (case-insensitive).
    pub fn from_label(label: &str) -> Option<DriftFamily> {
        let needle = label.to_ascii_lowercase();
        DriftFamily::ALL.into_iter().find(|f| f.label() == needle)
    }

    /// One line on what the stream stresses.
    pub fn stresses(&self) -> &'static str {
        match self {
            DriftFamily::SpeedDrift => "single-processor speed drift under load",
            DriftFamily::WeightDrift => "per-release stage-weight changes",
            DriftFamily::Churn => "processors joining and leaving the platform",
        }
    }

    /// Per-family stream salt (same role as [`ScenarioFamily::salt`]).
    fn salt(&self) -> u64 {
        match self {
            DriftFamily::SpeedDrift => 0x7370_645F_6472_6674, // "spd_drft"
            DriftFamily::WeightDrift => 0x7767_745F_6472_6674, // "wgt_drft"
            DriftFamily::Churn => 0x6368_7572_6E5F_5F5F,      // "churn___"
        }
    }
}

impl std::fmt::Display for DriftFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Seeded generator of one drifting scenario: a base instance and the
/// update stream that mutates it. `initial(seed)` and `updates(seed, k)`
/// are deterministic, and applying `updates` in order to `initial` keeps
/// every intermediate instance valid.
#[derive(Debug, Clone)]
pub struct DriftGenerator {
    family: DriftFamily,
    n_stages: usize,
    n_procs: usize,
}

impl DriftGenerator {
    /// A drift generator at the given base size.
    pub fn new(family: DriftFamily, n_stages: usize, n_procs: usize) -> Self {
        assert!(n_stages > 0, "need at least one stage");
        assert!(n_procs > 0, "need at least one processor");
        DriftGenerator {
            family,
            n_stages,
            n_procs,
        }
    }

    /// The drift family being generated.
    pub fn family(&self) -> DriftFamily {
        self.family
    }

    /// The base instance the stream starts from: the paper-E2 draw at
    /// this size (comm-homogeneous, so every solver applies).
    pub fn initial(&self, seed: u64) -> (Application, Platform) {
        ScenarioGenerator::new(ScenarioFamily::E2.params(self.n_stages, self.n_procs))
            .instance(seed, 0)
    }

    /// The first `count` updates of the stream under `seed`. Applied in
    /// order to [`DriftGenerator::initial`], every prefix yields a valid
    /// instance (speeds and works are clamped to `[1e-3, 1e6]`;
    /// departures only remove processors the stream itself added).
    pub fn updates(&self, seed: u64, count: usize) -> Vec<InstanceDelta> {
        let (app, pf) = self.initial(seed);
        let mut rng = StdRng::seed_from_u64(stream_seed(seed ^ self.family.salt(), 0));
        let mut out = Vec::with_capacity(count);
        match self.family {
            DriftFamily::SpeedDrift => {
                // The slowest base processor: last in the deterministic
                // speed-descending order.
                let proc = *pf.procs_by_speed_desc().last().expect("non-empty");
                let mut speed = pf.speed(proc);
                for _ in 0..count {
                    speed = (speed * drift_factor(&mut rng)).clamp(1e-3, 1e6);
                    out.push(InstanceDelta::ProcSpeed { proc, speed });
                }
            }
            DriftFamily::WeightDrift => {
                let mut works = app.works().to_vec();
                for _ in 0..count {
                    let stage = rng.random_range(0..works.len());
                    works[stage] = (works[stage] * drift_factor(&mut rng)).clamp(1e-3, 1e6);
                    out.push(InstanceDelta::StageWeight {
                        stage,
                        work: works[stage],
                    });
                }
            }
            DriftFamily::Churn => {
                let mut n_procs = pf.n_procs();
                for i in 0..count {
                    if i % 2 == 0 {
                        let speed = rng.random_range(1..=20u32) as f64;
                        out.push(InstanceDelta::ProcArrival { speed });
                        n_procs += 1;
                    } else {
                        n_procs -= 1;
                        out.push(InstanceDelta::ProcDeparture { proc: n_procs });
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tenant scenarios: K pipelines sharing one platform.
//
// The static zoo generates one pipeline per draw; the tenant registry
// generates *sets* of pipelines competing for one shared platform — the
// input of the multi-tenant co-scheduler. A separate registry (not part
// of `ScenarioFamily::ALL`) so single-pipeline consumers — the kernel
// identity suite above all — never see tenant draws.
// ---------------------------------------------------------------------------

/// Stable identifier of a registered tenant family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantFamily {
    /// Mixed-size pipelines in the paper's E2 workload regime on a
    /// paper-style platform: tenant `i`'s stage count is the base count
    /// scaled by `1.0 / 0.5 / 1.5` cyclically, all weights 1, no SLOs.
    MixedPaper,
    /// Same platform class, but tenant `i` carries weight `2^i` and a
    /// latency SLO at 1.5× its own full-platform optimal latency — the
    /// co-scheduler must trade fairness against feasibility.
    SkewedWeights,
    /// Mixed-size pipelines sharing a clustered two-tier heterogeneous
    /// platform (fast cluster, slow cluster, slow inter-cluster links):
    /// partitions decide who gets the fast tier.
    HetSharing,
}

impl TenantFamily {
    /// Every registered tenant family.
    pub const ALL: [TenantFamily; 3] = [
        TenantFamily::MixedPaper,
        TenantFamily::SkewedWeights,
        TenantFamily::HetSharing,
    ];

    /// Stable machine-readable label (CLI/CSV/CI key).
    pub fn label(&self) -> &'static str {
        match self {
            TenantFamily::MixedPaper => "mixed-paper",
            TenantFamily::SkewedWeights => "skewed-weights",
            TenantFamily::HetSharing => "het-sharing",
        }
    }

    /// Looks a tenant family up by its stable label (case-insensitive).
    pub fn from_label(label: &str) -> Option<TenantFamily> {
        let needle = label.to_ascii_lowercase();
        TenantFamily::ALL.into_iter().find(|f| f.label() == needle)
    }

    /// One line on what the family stresses.
    pub fn stresses(&self) -> &'static str {
        match self {
            TenantFamily::MixedPaper => "mixed tenant sizes on a paper-style shared platform",
            TenantFamily::SkewedWeights => "skewed weights with per-tenant latency SLOs",
            TenantFamily::HetSharing => "contention for the fast tier of a clustered platform",
        }
    }

    /// True when every scenario of the family lives on a Communication
    /// Homogeneous platform.
    pub fn comm_homogeneous(&self) -> bool {
        !matches!(self, TenantFamily::HetSharing)
    }

    /// Per-family stream salt (same role as [`ScenarioFamily::salt`]).
    fn salt(&self) -> u64 {
        match self {
            TenantFamily::MixedPaper => 0x6D69_7864_5F74_656E, // "mixd_ten"
            TenantFamily::SkewedWeights => 0x736B_6577_5F77_6774, // "skew_wgt"
            TenantFamily::HetSharing => 0x6865_745F_7368_6172, // "het_shar"
        }
    }
}

impl std::fmt::Display for TenantFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One tenant of a generated scenario: its pipeline, weight and optional
/// latency SLO. The model-layer mirror of the co-scheduler's tenant
/// entry (the solver-facing type lives above the model crate).
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// The tenant's pipeline.
    pub app: Application,
    /// Scheduling weight (finite, strictly positive).
    pub weight: f64,
    /// Latency SLO, when the tenant carries one.
    pub slo: Option<f64>,
}

/// One generated tenant scenario: K tenants and the platform they share.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantScenario {
    /// The shared platform.
    pub platform: Platform,
    /// The tenants, in enrollment order.
    pub tenants: Vec<TenantSpec>,
}

/// Seeded generator of tenant scenarios. `scenario(seed, i)` is
/// deterministic and per-family salted, mirroring [`ScenarioGenerator`].
#[derive(Debug, Clone)]
pub struct TenantScenarioGenerator {
    family: TenantFamily,
    n_tenants: usize,
    n_base_stages: usize,
    n_procs: usize,
}

impl TenantScenarioGenerator {
    /// A generator of `n_tenants`-way scenarios whose pipelines have
    /// about `n_base_stages` stages (tenant sizes mix around the base)
    /// on a shared `n_procs`-processor platform.
    pub fn new(
        family: TenantFamily,
        n_tenants: usize,
        n_base_stages: usize,
        n_procs: usize,
    ) -> Self {
        assert!(n_tenants > 0, "need at least one tenant");
        assert!(n_base_stages >= 2, "need at least two base stages");
        assert!(n_procs > 0, "need at least one processor");
        TenantScenarioGenerator {
            family,
            n_tenants,
            n_base_stages,
            n_procs,
        }
    }

    /// The tenant family being generated.
    pub fn family(&self) -> TenantFamily {
        self.family
    }

    /// Generates the `index`-th scenario of the family under `seed`.
    /// Deterministic: the same `(family, sizes, seed, index)` always
    /// regenerates the same scenario.
    pub fn scenario(&self, seed: u64, index: u64) -> TenantScenario {
        let mut rng = StdRng::seed_from_u64(stream_seed(seed ^ self.family.salt(), index));
        let p = self.n_procs;
        let platform = match self.family {
            TenantFamily::MixedPaper | TenantFamily::SkewedWeights => {
                let speeds: Vec<f64> = (0..p).map(|_| rng.random_range(1..=20u32) as f64).collect();
                Platform::comm_homogeneous(speeds, 10.0).expect("valid platform")
            }
            TenantFamily::HetSharing => {
                let n_fast = (p / 4).max(1);
                let speeds: Vec<f64> = (0..p)
                    .map(|u| {
                        let (lo, hi): (u32, u32) = if u < n_fast { (15, 30) } else { (1, 5) };
                        rng.random_range(lo..=hi) as f64
                    })
                    .collect();
                let matrix: Vec<Vec<f64>> = (0..p)
                    .map(|u| {
                        (0..p)
                            .map(|v| {
                                if (u < n_fast) == (v < n_fast) {
                                    100.0
                                } else {
                                    5.0
                                }
                            })
                            .collect()
                    })
                    .collect();
                Platform::fully_heterogeneous(speeds, matrix, 5.0).expect("valid platform")
            }
        };
        let tenants = (0..self.n_tenants)
            .map(|i| {
                let scale = [1.0, 0.5, 1.5][i % 3];
                let n = ((self.n_base_stages as f64 * scale).round() as usize).max(2);
                let works = sample_vec(&mut rng, n, (1.0, 20.0));
                let deltas = sample_vec(&mut rng, n + 1, (1.0, 20.0));
                let app = Application::new(works, deltas).expect("valid application");
                let (weight, slo) = match self.family {
                    TenantFamily::MixedPaper | TenantFamily::HetSharing => (1.0, None),
                    TenantFamily::SkewedWeights => {
                        // An SLO at 1.5× the tenant's own full-platform
                        // optimum: tight enough to bind once the tenant
                        // only owns a share of the processors.
                        let l_opt = crate::cost::CostModel::new(&app, &platform).optimal_latency();
                        ((1u64 << i) as f64, Some(1.5 * l_opt))
                    }
                };
                TenantSpec { app, weight, slo }
            })
            .collect();
        TenantScenario { platform, tenants }
    }

    /// The first `count` scenarios under `seed`.
    pub fn batch(&self, seed: u64, count: usize) -> Vec<TenantScenario> {
        (0..count as u64).map(|i| self.scenario(seed, i)).collect()
    }
}

/// One multiplicative drift step in `[1/2, 2]`, log-symmetric so the
/// walk is unbiased: `E[log factor] = 0`, and a drifting quantity
/// wanders around its base value instead of compounding upward the way
/// a factor uniform in `[0.5, 2]` (mean 1.25) would.
fn drift_factor<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    (2.0f64).powf(sample_uniform(rng, -1.0, 1.0))
}

fn validate_range(what: &str, (lo, hi): (f64, f64), min_lo: f64) {
    assert!(
        lo.is_finite() && hi.is_finite() && lo >= min_lo && lo <= hi,
        "invalid {what} range [{lo}, {hi}]"
    );
}

fn sample_vec<R: Rng + ?Sized>(rng: &mut R, count: usize, range: (f64, f64)) -> Vec<f64> {
    (0..count)
        .map(|_| sample_uniform(rng, range.0, range.1))
        .collect()
}

/// One draw from the bounded Pareto distribution with tail exponent
/// `alpha` on support `[lo, hi]` (inverse-CDF sampling). Heavier tails
/// (smaller `alpha`) push more mass toward `hi`-sized rare events while
/// most draws stay near `lo` — the standard model for Zipf-like speed and
/// work distributions.
pub fn bounded_pareto<R: Rng + ?Sized>(rng: &mut R, alpha: f64, lo: f64, hi: f64) -> f64 {
    assert!(
        alpha > 0.0 && lo > 0.0 && lo <= hi,
        "invalid Pareto support"
    );
    if lo == hi {
        return lo;
    }
    let u: f64 = rng.random_range(0.0..1.0);
    let l = lo.powf(-alpha);
    let h = hi.powf(-alpha);
    (l - u * (l - h)).powf(-1.0 / alpha)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_labels_are_stable_and_unique() {
        let labels: Vec<&str> = ScenarioFamily::ALL.iter().map(|f| f.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ScenarioFamily::ALL.len(), "duplicate labels");
        for family in ScenarioFamily::ALL {
            assert_eq!(ScenarioFamily::from_label(family.label()), Some(family));
            assert_eq!(
                ScenarioFamily::from_label(&family.label().to_ascii_uppercase()),
                Some(family)
            );
            assert_eq!(family.to_string(), family.label());
            assert!(!family.stresses().is_empty());
        }
        assert_eq!(ScenarioFamily::from_label("no-such-family"), None);
    }

    #[test]
    fn every_family_generates_valid_sized_instances() {
        for family in ScenarioFamily::ALL {
            let gen = ScenarioGenerator::new(family.params(9, 7));
            let (app, pf) = gen.instance(1, 0);
            assert_eq!(app.n_stages(), 9, "{family}");
            assert_eq!(pf.n_procs(), 7, "{family}");
            assert_eq!(
                pf.is_comm_homogeneous(),
                family.comm_homogeneous(),
                "{family}: platform class mismatch"
            );
        }
    }

    #[test]
    fn same_seed_same_instance_distinct_indices_differ() {
        for family in ScenarioFamily::ALL {
            let gen = ScenarioGenerator::new(family.params(10, 6));
            let (a1, p1) = gen.instance(42, 3);
            let (a2, p2) = gen.instance(42, 3);
            assert_eq!(a1, a2, "{family}");
            assert_eq!(p1, p2, "{family}");
            let (b, _) = gen.instance(42, 4);
            assert_ne!(a1, b, "{family}: consecutive indices collided");
        }
    }

    #[test]
    fn family_salts_decorrelate_streams() {
        // Same (seed, index), different non-paper families: the raw draws
        // must differ (works are sampled first in every family).
        let ht = ScenarioGenerator::new(ScenarioFamily::HeavyTail.params(10, 6));
        let tt = ScenarioGenerator::new(ScenarioFamily::TwoTier.params(10, 6));
        let (a1, _) = ht.instance(7, 0);
        let (a2, _) = tt.instance(7, 0);
        assert_ne!(a1.works(), a2.works());
    }

    #[test]
    fn bounded_pareto_respects_support() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..500 {
            let v = bounded_pareto(&mut rng, 1.2, 2.0, 50.0);
            assert!((2.0..=50.0).contains(&v), "draw {v} escaped the support");
        }
        assert_eq!(bounded_pareto(&mut rng, 1.0, 3.0, 3.0), 3.0);
    }

    #[test]
    fn adversarial_instances_are_degenerate() {
        let gen = ScenarioGenerator::new(ScenarioFamily::Adversarial.params(12, 5));
        let (app, pf) = gen.instance(9, 1);
        assert!(app.deltas().iter().all(|&d| d == 0.0));
        assert!(pf.speeds().iter().all(|&s| s == 1.0));
        for &w in app.works() {
            let e = w.log2();
            assert_eq!(e.fract(), 0.0, "work {w} is not a power of two");
            assert!((0.0..=6.0).contains(&e));
        }
    }

    #[test]
    fn two_tier_platform_has_two_bandwidth_classes() {
        let gen = ScenarioGenerator::new(ScenarioFamily::TwoTier.params(6, 8));
        let (_, pf) = gen.instance(3, 0);
        let c = TwoTierConfig::default();
        let mut seen_intra = false;
        let mut seen_inter = false;
        for u in 0..8 {
            for v in 0..8 {
                if u == v {
                    continue;
                }
                let b = pf.bandwidth(u, v);
                assert!(b == c.intra_bandwidth || b == c.inter_bandwidth);
                seen_intra |= b == c.intra_bandwidth;
                seen_inter |= b == c.inter_bandwidth;
            }
        }
        assert!(seen_intra && seen_inter, "both link classes must appear");
        assert_eq!(pf.io_bandwidth_of(0), c.inter_bandwidth);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_scenario_panics() {
        let _ = ScenarioGenerator::new(ScenarioFamily::HeavyTail.params(0, 4));
    }

    #[test]
    fn drift_labels_are_stable_and_unique() {
        let labels: Vec<&str> = DriftFamily::ALL.iter().map(|f| f.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), DriftFamily::ALL.len(), "duplicate labels");
        for family in DriftFamily::ALL {
            assert_eq!(DriftFamily::from_label(family.label()), Some(family));
            assert_eq!(family.to_string(), family.label());
            assert!(!family.stresses().is_empty());
        }
        assert_eq!(DriftFamily::from_label("no-such-drift"), None);
    }

    #[test]
    fn drift_streams_are_deterministic_and_stay_valid() {
        for family in DriftFamily::ALL {
            let gen = DriftGenerator::new(family, 12, 6);
            let (app0, pf0) = gen.initial(11);
            assert_eq!(gen.initial(11), (app0.clone(), pf0.clone()), "{family}");
            let stream = gen.updates(11, 24);
            assert_eq!(stream, gen.updates(11, 24), "{family}: stream drifted");
            assert_eq!(stream.len(), 24);
            // Every prefix applies cleanly.
            let (mut app, mut pf) = (app0, pf0);
            for (i, delta) in stream.iter().enumerate() {
                let (a, p) = delta
                    .apply_to(&app, &pf)
                    .unwrap_or_else(|e| panic!("{family} update #{i} invalid: {e}"));
                app = a;
                pf = p;
            }
            assert_eq!(app.n_stages(), 12, "{family}");
            assert!(pf.n_procs() >= 6, "{family}");
        }
    }

    #[test]
    fn speed_drift_touches_exactly_one_processor() {
        let gen = DriftGenerator::new(DriftFamily::SpeedDrift, 10, 5);
        let (_, pf) = gen.initial(3);
        let slowest = *pf.procs_by_speed_desc().last().unwrap();
        for delta in gen.updates(3, 16) {
            match delta {
                InstanceDelta::ProcSpeed { proc, speed } => {
                    assert_eq!(proc, slowest);
                    assert!((1e-3..=1e6).contains(&speed));
                }
                other => panic!("unexpected delta {other:?}"),
            }
        }
    }

    #[test]
    fn tenant_labels_are_stable_and_unique() {
        let labels: Vec<&str> = TenantFamily::ALL.iter().map(|f| f.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), TenantFamily::ALL.len(), "duplicate labels");
        for family in TenantFamily::ALL {
            assert_eq!(TenantFamily::from_label(family.label()), Some(family));
            assert_eq!(family.to_string(), family.label());
            assert!(!family.stresses().is_empty());
        }
        assert_eq!(TenantFamily::from_label("no-such-tenancy"), None);
        // Tenant families are their own registry, not zoo families.
        for family in TenantFamily::ALL {
            assert_eq!(ScenarioFamily::from_label(family.label()), None);
        }
    }

    #[test]
    fn tenant_scenarios_are_deterministic_with_mixed_sizes() {
        for family in TenantFamily::ALL {
            let gen = TenantScenarioGenerator::new(family, 3, 6, 5);
            let s1 = gen.scenario(42, 2);
            assert_eq!(s1, gen.scenario(42, 2), "{family}: stream drifted");
            assert_ne!(s1, gen.scenario(42, 3), "{family}: indices collided");
            assert_eq!(s1.tenants.len(), 3, "{family}");
            assert_eq!(s1.platform.n_procs(), 5, "{family}");
            assert_eq!(
                s1.platform.is_comm_homogeneous(),
                family.comm_homogeneous(),
                "{family}: platform class mismatch"
            );
            // Base 6 scaled by 1.0/0.5/1.5: stage counts 6, 3, 9.
            let sizes: Vec<usize> = s1.tenants.iter().map(|t| t.app.n_stages()).collect();
            assert_eq!(sizes, vec![6, 3, 9], "{family}");
            for t in &s1.tenants {
                assert!(t.weight.is_finite() && t.weight > 0.0, "{family}");
                if let Some(slo) = t.slo {
                    assert!(slo.is_finite() && slo > 0.0, "{family}");
                }
            }
        }
    }

    #[test]
    fn skewed_weights_carry_slos_and_doubling_weights() {
        let gen = TenantScenarioGenerator::new(TenantFamily::SkewedWeights, 3, 5, 4);
        let s = gen.scenario(7, 0);
        let weights: Vec<f64> = s.tenants.iter().map(|t| t.weight).collect();
        assert_eq!(weights, vec![1.0, 2.0, 4.0]);
        for t in &s.tenants {
            let l_opt = crate::cost::CostModel::new(&t.app, &s.platform).optimal_latency();
            assert_eq!(t.slo, Some(1.5 * l_opt));
        }
        // The unweighted families carry neither.
        let plain = TenantScenarioGenerator::new(TenantFamily::MixedPaper, 2, 5, 4).scenario(7, 0);
        assert!(plain
            .tenants
            .iter()
            .all(|t| t.weight == 1.0 && t.slo.is_none()));
    }

    #[test]
    fn churn_never_shrinks_below_the_base_platform() {
        let gen = DriftGenerator::new(DriftFamily::Churn, 8, 4);
        let mut n = 4usize;
        for delta in gen.updates(5, 11) {
            match delta {
                InstanceDelta::ProcArrival { .. } => n += 1,
                InstanceDelta::ProcDeparture { proc } => {
                    assert_eq!(proc, n - 1, "departures remove the newest processor");
                    n -= 1;
                }
                other => panic!("unexpected delta {other:?}"),
            }
            assert!(n >= 4);
        }
    }
}
