//! Plain-text instance serialization.
//!
//! A tiny line-oriented format so instances can be saved, diffed, shipped
//! in bug reports and loaded by the examples — without pulling a
//! serialization framework into the workspace:
//!
//! ```text
//! # anything after '#' is a comment
//! pipeline-instance v1
//! works    4 8 2
//! deltas   2 6 4 10
//! speeds   2 4
//! bandwidth 2
//! ```
//!
//! `bandwidth` declares a Communication Homogeneous platform; fully
//! heterogeneous platforms add one `link u v b` line per directed pair
//! (unlisted pairs default to `io-bandwidth`):
//!
//! ```text
//! pipeline-instance v1
//! works    1 1
//! deltas   1 1 1
//! speeds   1 1
//! io-bandwidth 8
//! link 0 1 2.5
//! link 1 0 4
//! ```

use crate::application::Application;
use crate::delta::InstanceDelta;
use crate::platform::{LinkModel, Platform};
use crate::{ModelError, Result};

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The `pipeline-instance v1` header is missing or wrong.
    BadHeader,
    /// A required section is missing.
    Missing(&'static str),
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// A specific `key=value` field of a wire line could not be parsed —
    /// carries the offending key so services can report it structurally
    /// (see [`WireFailure::key`]).
    BadField {
        /// 1-based line number (0 when the caller did not supply one).
        line: usize,
        /// The offending key.
        key: String,
        /// Description of the problem.
        detail: String,
    },
    /// Parsed values failed model validation.
    Model(ModelError),
}

impl ParseError {
    /// The 1-based line number the error points at, when known.
    pub fn line(&self) -> Option<usize> {
        match self {
            ParseError::BadLine { line, .. } | ParseError::BadField { line, .. } if *line > 0 => {
                Some(*line)
            }
            _ => None,
        }
    }

    /// The offending `key=value` key, when the error names one.
    pub fn key(&self) -> Option<&str> {
        match self {
            ParseError::BadField { key, .. } => Some(key),
            _ => None,
        }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing 'pipeline-instance v1' header"),
            ParseError::Missing(what) => write!(f, "missing '{what}' section"),
            ParseError::BadLine { line, detail } => write!(f, "line {line}: {detail}"),
            ParseError::BadField { line, key, detail } => {
                write!(f, "line {line}: field '{key}': {detail}")
            }
            ParseError::Model(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> Self {
        ParseError::Model(e)
    }
}

/// Serializes an instance to the v1 text format.
pub fn format_instance(app: &Application, platform: &Platform) -> String {
    let mut out = String::from("pipeline-instance v1\n");
    let join = |vals: &[f64]| {
        vals.iter()
            .map(|v| format_f64(*v))
            .collect::<Vec<_>>()
            .join(" ")
    };
    out.push_str(&format!("works {}\n", join(app.works())));
    out.push_str(&format!("deltas {}\n", join(app.deltas())));
    out.push_str(&format!("speeds {}\n", join(platform.speeds())));
    match platform.links() {
        LinkModel::Homogeneous(b) => {
            out.push_str(&format!("bandwidth {}\n", format_f64(*b)));
        }
        LinkModel::Heterogeneous {
            matrix,
            io_bandwidth,
        } => {
            out.push_str(&format!("io-bandwidth {}\n", format_f64(*io_bandwidth)));
            for (u, row) in matrix.iter().enumerate() {
                for (v, b) in row.iter().enumerate() {
                    if u != v {
                        out.push_str(&format!("link {u} {v} {}\n", format_f64(*b)));
                    }
                }
            }
        }
    }
    out
}

fn format_f64(v: f64) -> String {
    // Shortest representation that round-trips.
    let s = format!("{v}");
    debug_assert_eq!(s.parse::<f64>().ok(), Some(v));
    s
}

/// Parses the v1 text format back into an instance.
pub fn parse_instance(text: &str) -> std::result::Result<(Application, Platform), ParseError> {
    let mut works: Option<Vec<f64>> = None;
    let mut deltas: Option<Vec<f64>> = None;
    let mut speeds: Option<Vec<f64>> = None;
    let mut bandwidth: Option<f64> = None;
    let mut io_bandwidth: Option<f64> = None;
    let mut links: Vec<(usize, usize, f64)> = Vec::new();
    let mut saw_header = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !saw_header {
            if line == "pipeline-instance v1" {
                saw_header = true;
                continue;
            }
            return Err(ParseError::BadHeader);
        }
        let mut tokens = line.split_whitespace();
        let key = tokens.next().expect("non-empty line");
        let rest: Vec<&str> = tokens.collect();
        let parse_vec = |rest: &[&str]| -> std::result::Result<Vec<f64>, ParseError> {
            rest.iter()
                .map(|t| {
                    t.parse::<f64>().map_err(|_| ParseError::BadLine {
                        line: line_no,
                        detail: format!("bad number {t:?}"),
                    })
                })
                .collect()
        };
        let parse_one = |rest: &[&str]| -> std::result::Result<f64, ParseError> {
            if rest.len() != 1 {
                return Err(ParseError::BadLine {
                    line: line_no,
                    detail: format!("expected one value, got {}", rest.len()),
                });
            }
            parse_vec(rest).map(|v| v[0])
        };
        match key {
            "works" => works = Some(parse_vec(&rest)?),
            "deltas" => deltas = Some(parse_vec(&rest)?),
            "speeds" => speeds = Some(parse_vec(&rest)?),
            "bandwidth" => bandwidth = Some(parse_one(&rest)?),
            "io-bandwidth" => io_bandwidth = Some(parse_one(&rest)?),
            "link" => {
                if rest.len() != 3 {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        detail: "link wants: link <from> <to> <bandwidth>".into(),
                    });
                }
                let u = rest[0].parse::<usize>().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    detail: format!("bad processor id {:?}", rest[0]),
                })?;
                let v = rest[1].parse::<usize>().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    detail: format!("bad processor id {:?}", rest[1]),
                })?;
                let b = rest[2].parse::<f64>().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    detail: format!("bad bandwidth {:?}", rest[2]),
                })?;
                links.push((u, v, b));
            }
            other => {
                return Err(ParseError::BadLine {
                    line: line_no,
                    detail: format!("unknown key {other:?}"),
                })
            }
        }
    }

    if !saw_header {
        return Err(ParseError::BadHeader);
    }
    let works = works.ok_or(ParseError::Missing("works"))?;
    let deltas = deltas.ok_or(ParseError::Missing("deltas"))?;
    let speeds = speeds.ok_or(ParseError::Missing("speeds"))?;
    let app = Application::new(works, deltas)?;
    let platform = match (bandwidth, io_bandwidth) {
        (Some(b), None) if links.is_empty() => Platform::comm_homogeneous(speeds, b)?,
        (None, Some(io_b)) => {
            let p = speeds.len();
            let mut matrix = vec![vec![io_b; p]; p];
            for (u, v, b) in links {
                if u >= p || v >= p {
                    return Err(ParseError::Model(ModelError::BadAllocation {
                        detail: format!("link references unknown processor P{}", u.max(v)),
                    }));
                }
                matrix[u][v] = b;
            }
            Platform::fully_heterogeneous(speeds, matrix, io_b)?
        }
        (Some(_), Some(_)) => {
            return Err(ParseError::BadLine {
                line: 0,
                detail: "give either 'bandwidth' or 'io-bandwidth'+links, not both".into(),
            })
        }
        (Some(_), None) => {
            return Err(ParseError::BadLine {
                line: 0,
                detail: "'link' lines require 'io-bandwidth', not 'bandwidth'".into(),
            })
        }
        (None, None) => return Err(ParseError::Missing("bandwidth")),
    };
    Ok((app, platform))
}

/// Convenience alias keeping the crate-level [`Result`] usable here.
pub type _Unused = Result<()>;

// ---------------------------------------------------------------------------
// Solver-service wire format v1.2.
//
// One request or report per line, `key=value` tokens separated by spaces,
// so the `pwsched solve --stdin` service can sit behind a pipe or socket
// and serve line-oriented traffic. Values never contain spaces (mappings,
// fronts, tenant lists and partitions use `,`/`;`/`:` separators). The
// model crate owns only the *syntax*; `pipeline_core::service` converts
// to and from its typed request/report/error types.
//
// ```text
// solve id=1 objective=min-period strategy=auto
// solve id=2 objective=min-latency-for-period bound=2.5 strategy=best
// solve id=3 objective=pareto-front strategy=exact tolerance=1e-9
// update id=4 delta=proc-speed proc=2 speed=4.5
// update id=5 delta=stage-weight stage=3 work=7.25
// cosched id=6 objective=max-min tenants=-,a/b.pw weights=2:1 slos=1.5:-
// stats id=7
// report id=1 status=ok solver=h1 period=1.5 latency=3 feasible=true mapping=0-2@1,2-5@0
// report id=3 status=ok solver=exact period=1 latency=9 feasible=true mapping=0-6@2 front=1:9;2:6
// report id=6 status=ok solver=cosched objective=max-min score=3 tiebreak=5 feasible=true partition=0,2;1 periods=1.5;2 latencies=4;6 slo-met=true;true
// report id=7 status=ok solver=stats live=1 connections=3 rejected=0 requests=9 failures=1 cache-hits=4 cache-misses=2 cache-evictions=0 uptime-s=12
// report id=4 status=error code=bound-below-floor bound=0.5 floor=0.875
// report id=0 status=error code=bad-request line=7 key=objective
// ```
//
// v1.1 adds the `update` verb: an [`InstanceDelta`] applied in place to
// the service's default instance (hot reload), answered with an ordinary
// report line carrying the updated instance's baseline coordinates.
//
// v1.2 adds two verbs. `cosched` asks the service to co-schedule K
// tenant pipelines onto the shared platform: `tenants=` lists one
// instance path per tenant (`-` = the service's default instance),
// optional `weights=` / `slos=` carry `:`-separated per-tenant values
// (an SLO of `-` means "none"), and the report echoes the partition
// objective, its score/tiebreak, and the per-tenant processor groups,
// periods, latencies and SLO verdicts. `stats` reports the service's
// own counters (live/served connections, admission rejections, request
// and failure totals, instance-cache hits/misses/evictions, uptime in
// whole seconds) as an ordinary ok-report with `solver=stats`.
//
// Failure reports may carry structured diagnostics beyond the code: the
// 1-based input line number of the offending request (`line=`) and the
// offending `key=value` key (`key=`). Services add transport-level codes
// on top of the solver codes: `bad-request` (the request line did not
// parse), `unknown-solver`, `bad-instance` (the referenced instance file
// did not load), `bad-delta` (the update could not be applied),
// `no-default-instance` (an update arrived but the service serves no
// default instance), `unknown-objective` (a cosched named no registered
// partition objective), `overloaded` (admission control refused the
// connection), and `line-too-long` (the request exceeded the service's
// line-length bound). Tenancy-layer failures reuse the tenancy error
// codes (`mismatched-platforms`, `too-few-processors`, …).
// ---------------------------------------------------------------------------

/// Objective selector of one wire request — the syntactic mirror of
/// `pipeline_core::Objective` (the model crate sits below the solvers, so
/// the wire layer carries its own copy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireObjective {
    /// Minimize latency subject to `period ≤ bound`.
    MinLatencyForPeriod(f64),
    /// Minimize period subject to `latency ≤ bound`.
    MinPeriodForLatency(f64),
    /// Minimize the period outright.
    MinPeriod,
    /// Minimize the latency outright.
    MinLatency,
    /// Materialize the full period/latency Pareto front.
    ParetoFront,
}

impl WireObjective {
    /// Stable wire token of the objective kind.
    pub fn token(&self) -> &'static str {
        match self {
            WireObjective::MinLatencyForPeriod(_) => "min-latency-for-period",
            WireObjective::MinPeriodForLatency(_) => "min-period-for-latency",
            WireObjective::MinPeriod => "min-period",
            WireObjective::MinLatency => "min-latency",
            WireObjective::ParetoFront => "pareto-front",
        }
    }

    /// The bound carried by the bounded objectives.
    pub fn bound(&self) -> Option<f64> {
        match self {
            WireObjective::MinLatencyForPeriod(b) | WireObjective::MinPeriodForLatency(b) => {
                Some(*b)
            }
            _ => None,
        }
    }
}

/// One `solve` line of the request stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WireRequest {
    /// Client correlation id, echoed back in the report.
    pub id: u64,
    /// What to optimize.
    pub objective: WireObjective,
    /// Solver selector (`auto`, `best`, `exact`, `h1`…`h7`); validated by
    /// the service layer, opaque here.
    pub strategy: String,
    /// Optional relative tolerance for bound searches.
    pub tolerance: Option<f64>,
    /// Optional instance-file override (service mode serves many
    /// instances over one stream). Paths must not contain spaces.
    pub instance: Option<String>,
}

/// A successful `report` line.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSolved {
    /// Echoed request id.
    pub id: u64,
    /// Wire code of what produced the result (`exact`, `h1`…`h7`).
    pub solver: String,
    /// Achieved period.
    pub period: f64,
    /// Achieved latency.
    pub latency: f64,
    /// Whether the requested constraint was met.
    pub feasible: bool,
    /// Compact mapping encoding `start-end@proc,…`.
    pub mapping: String,
    /// `(period, latency)` front points, present only for
    /// [`WireObjective::ParetoFront`] requests.
    pub front: Option<Vec<(f64, f64)>>,
}

/// A failed `report` line with a structured error code.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFailure {
    /// Echoed request id (0 when the request line itself did not parse).
    pub id: u64,
    /// Stable machine-readable error code (e.g. `bound-below-floor`).
    pub code: String,
    /// The offending bound, for infeasibility errors.
    pub bound: Option<f64>,
    /// The feasibility floor the bound fell below.
    pub floor: Option<f64>,
    /// 1-based input line number of the offending request, for parse
    /// failures in a streamed request sequence.
    pub line: Option<u64>,
    /// The offending `key=value` key, for parse failures that name one.
    pub key: Option<String>,
}

impl WireFailure {
    /// A bare failure: just an id and a code, no diagnostics.
    pub fn new(id: u64, code: impl Into<String>) -> Self {
        WireFailure {
            id,
            code: code.into(),
            bound: None,
            floor: None,
            line: None,
            key: None,
        }
    }

    /// Attaches the 1-based input line number of the offending request.
    pub fn at_line(mut self, line: u64) -> Self {
        self.line = Some(line);
        self
    }

    /// Attaches the offending `key=value` key.
    pub fn for_key(mut self, key: impl Into<String>) -> Self {
        self.key = Some(key.into());
        self
    }
}

/// A successful `cosched` report: the chosen partition and per-tenant
/// outcomes (wire format v1.2). Serialized with `solver=cosched`; the
/// per-tenant vectors are index-aligned and `;`-separated on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct WireCoschedReport {
    /// Echoed request id.
    pub id: u64,
    /// Partition-objective label (`max-min`, `weighted-sum`, `slo`).
    pub objective: String,
    /// Primary objective score (smaller is better).
    pub score: f64,
    /// Secondary tie-breaking score.
    pub tiebreak: f64,
    /// Whether every tenant's SLO was met.
    pub feasible: bool,
    /// Per-tenant processor groups in original numbering
    /// (`partition=0,2;1,3`).
    pub partition: Vec<Vec<usize>>,
    /// Per-tenant achieved periods (`periods=1.5;2`).
    pub periods: Vec<f64>,
    /// Per-tenant achieved latencies (`latencies=4;6`).
    pub latencies: Vec<f64>,
    /// Per-tenant SLO verdicts (`slo-met=true;false`).
    pub slo_met: Vec<bool>,
}

/// A successful `stats` report: the service's own counters (wire format
/// v1.2). Serialized with `solver=stats`.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStatsReport {
    /// Echoed request id.
    pub id: u64,
    /// Connections being served right now (including the asking one).
    pub live: u64,
    /// Connections accepted since startup.
    pub connections: u64,
    /// Connections refused by admission control.
    pub rejected: u64,
    /// Requests answered (not counting this `stats` request).
    pub requests: u64,
    /// Requests answered with an error report.
    pub failures: u64,
    /// Instance-cache hits.
    pub cache_hits: u64,
    /// Instance-cache misses.
    pub cache_misses: u64,
    /// Instance-cache evictions.
    pub cache_evictions: u64,
    /// Whole seconds since the service started.
    pub uptime_s: u64,
}

/// One line of the report stream.
#[derive(Debug, Clone, PartialEq)]
pub enum WireReport {
    /// The request was answered.
    Solved(WireSolved),
    /// A `cosched` request was answered with a co-schedule.
    Cosched(WireCoschedReport),
    /// A `stats` request was answered with service counters.
    Stats(WireStatsReport),
    /// The request failed with a structured error.
    Failed(WireFailure),
}

impl WireReport {
    /// The echoed request id.
    pub fn id(&self) -> u64 {
        match self {
            WireReport::Solved(s) => s.id,
            WireReport::Cosched(c) => c.id,
            WireReport::Stats(s) => s.id,
            WireReport::Failed(f) => f.id,
        }
    }
}

fn wire_err(detail: String) -> ParseError {
    ParseError::BadLine { line: 0, detail }
}

/// Splits a wire line into its verb and `key=value` pairs. `line_no` is
/// the 1-based stream position carried into errors (0: unknown).
fn wire_tokens(
    line: &str,
    verb: &str,
    line_no: usize,
) -> std::result::Result<Vec<(String, String)>, ParseError> {
    let mut tokens = line.split_whitespace();
    match tokens.next() {
        Some(v) if v == verb => {}
        other => {
            return Err(ParseError::BadLine {
                line: line_no,
                detail: format!("expected '{verb} …', got {other:?}"),
            })
        }
    }
    tokens
        .map(|t| {
            t.split_once('=')
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .ok_or_else(|| ParseError::BadLine {
                    line: line_no,
                    detail: format!("expected key=value, got {t:?}"),
                })
        })
        .collect()
}

struct WireFields {
    fields: Vec<(String, String)>,
    /// 1-based line number carried into every field error (0: unknown).
    line_no: usize,
}

impl WireFields {
    fn new(fields: Vec<(String, String)>, line_no: usize) -> Self {
        WireFields { fields, line_no }
    }

    fn field_err(&self, key: &str, detail: String) -> ParseError {
        ParseError::BadField {
            line: self.line_no,
            key: key.to_string(),
            detail,
        }
    }

    fn take(&mut self, key: &str) -> Option<String> {
        let pos = self.fields.iter().position(|(k, _)| k == key)?;
        Some(self.fields.remove(pos).1)
    }

    fn take_f64(&mut self, key: &str) -> std::result::Result<Option<f64>, ParseError> {
        self.take(key)
            .map(|v| {
                v.parse::<f64>()
                    .map_err(|_| self.field_err(key, format!("bad number {v:?}")))
            })
            .transpose()
    }

    fn require(&mut self, key: &str) -> std::result::Result<String, ParseError> {
        self.take(key)
            .ok_or_else(|| self.field_err(key, format!("missing {key}=")))
    }

    fn require_f64(&mut self, key: &str) -> std::result::Result<f64, ParseError> {
        self.take_f64(key)?
            .ok_or_else(|| self.field_err(key, format!("missing {key}=")))
    }

    fn require_usize(&mut self, key: &str) -> std::result::Result<usize, ParseError> {
        let v = self.require(key)?;
        v.parse::<usize>()
            .map_err(|_| self.field_err(key, format!("bad index {v:?}")))
    }

    fn require_u64(&mut self, key: &str) -> std::result::Result<u64, ParseError> {
        let v = self.require(key)?;
        v.parse::<u64>()
            .map_err(|_| self.field_err(key, format!("bad count {v:?}")))
    }

    fn finish(mut self) -> std::result::Result<(), ParseError> {
        match self.fields.pop() {
            None => Ok(()),
            Some((k, _)) => Err(self.field_err(&k, "unknown key".into())),
        }
    }
}

/// Parses one `solve …` request line.
pub fn parse_request(line: &str) -> std::result::Result<WireRequest, ParseError> {
    parse_request_at(line, 0)
}

/// [`parse_request`] with the request's 1-based position in its input
/// stream: parse errors name that line (and the offending key, where one
/// is known), so streamed services can answer malformed requests with a
/// structured diagnosis instead of a generic `bad-request`.
pub fn parse_request_at(
    line: &str,
    line_no: usize,
) -> std::result::Result<WireRequest, ParseError> {
    let mut fields = WireFields::new(wire_tokens(line, "solve", line_no)?, line_no);
    let id = {
        let v = fields.require("id")?;
        v.parse::<u64>()
            .map_err(|_| fields.field_err("id", format!("bad id {v:?}")))?
    };
    let obj_token = fields.require("objective")?;
    let bound = fields.take_f64("bound")?;
    let objective = match obj_token.as_str() {
        "min-latency-for-period" | "min-period-for-latency" => {
            let b = bound.ok_or_else(|| {
                fields.field_err("bound", format!("objective {obj_token:?} needs bound="))
            })?;
            if obj_token.as_str() == "min-latency-for-period" {
                WireObjective::MinLatencyForPeriod(b)
            } else {
                WireObjective::MinPeriodForLatency(b)
            }
        }
        "min-period" => WireObjective::MinPeriod,
        "min-latency" => WireObjective::MinLatency,
        "pareto-front" => WireObjective::ParetoFront,
        other => return Err(fields.field_err("objective", format!("unknown objective {other:?}"))),
    };
    if objective.bound().is_none() && bound.is_some() {
        return Err(fields.field_err("bound", format!("objective {obj_token:?} takes no bound=")));
    }
    if objective.bound().is_some_and(f64::is_nan) {
        return Err(fields.field_err("bound", "bound= must not be NaN".into()));
    }
    let strategy = fields.take("strategy").unwrap_or_else(|| "auto".into());
    let tolerance = fields.take_f64("tolerance")?;
    if tolerance.is_some_and(f64::is_nan) {
        return Err(fields.field_err("tolerance", "tolerance= must not be NaN".into()));
    }
    let instance = fields.take("instance");
    fields.finish()?;
    Ok(WireRequest {
        id,
        objective,
        strategy,
        tolerance,
        instance,
    })
}

/// Formats one request as a `solve …` line (round-trips through
/// [`parse_request`]).
pub fn format_request(req: &WireRequest) -> String {
    let mut out = format!("solve id={} objective={}", req.id, req.objective.token());
    if let Some(b) = req.objective.bound() {
        out.push_str(&format!(" bound={}", format_f64(b)));
    }
    out.push_str(&format!(" strategy={}", req.strategy));
    if let Some(t) = req.tolerance {
        out.push_str(&format!(" tolerance={}", format_f64(t)));
    }
    if let Some(i) = &req.instance {
        out.push_str(&format!(" instance={i}"));
    }
    out
}

/// One `update` line of the request stream (wire format v1.1): an
/// instance delta applied in place to the service's default instance.
#[derive(Debug, Clone, PartialEq)]
pub struct WireUpdate {
    /// Client correlation id, echoed back in the report.
    pub id: u64,
    /// The edit to apply.
    pub delta: InstanceDelta,
}

/// Parses one `update …` line.
pub fn parse_update(line: &str) -> std::result::Result<WireUpdate, ParseError> {
    parse_update_at(line, 0)
}

/// [`parse_update`] with the update's 1-based position in its input
/// stream carried into parse errors, mirroring [`parse_request_at`].
pub fn parse_update_at(line: &str, line_no: usize) -> std::result::Result<WireUpdate, ParseError> {
    let mut fields = WireFields::new(wire_tokens(line, "update", line_no)?, line_no);
    let id = {
        let v = fields.require("id")?;
        v.parse::<u64>()
            .map_err(|_| fields.field_err("id", format!("bad id {v:?}")))?
    };
    let kind = fields.require("delta")?;
    let delta = match kind.as_str() {
        "proc-speed" => InstanceDelta::ProcSpeed {
            proc: fields.require_usize("proc")?,
            speed: fields.require_f64("speed")?,
        },
        "proc-arrival" => InstanceDelta::ProcArrival {
            speed: fields.require_f64("speed")?,
        },
        "proc-departure" => InstanceDelta::ProcDeparture {
            proc: fields.require_usize("proc")?,
        },
        "bandwidth" => InstanceDelta::Bandwidth {
            bandwidth: fields.require_f64("bandwidth")?,
        },
        "link-bandwidth" => InstanceDelta::LinkBandwidth {
            from: fields.require_usize("from")?,
            to: fields.require_usize("to")?,
            bandwidth: fields.require_f64("bandwidth")?,
        },
        "stage-weight" => InstanceDelta::StageWeight {
            stage: fields.require_usize("stage")?,
            work: fields.require_f64("work")?,
        },
        other => return Err(fields.field_err("delta", format!("unknown delta kind {other:?}"))),
    };
    fields.finish()?;
    Ok(WireUpdate { id, delta })
}

/// Formats one update as an `update …` line (round-trips through
/// [`parse_update`]).
pub fn format_update(upd: &WireUpdate) -> String {
    let mut out = format!("update id={} delta={}", upd.id, upd.delta.kind());
    match &upd.delta {
        InstanceDelta::ProcSpeed { proc, speed } => {
            out.push_str(&format!(" proc={proc} speed={}", format_f64(*speed)));
        }
        InstanceDelta::ProcArrival { speed } => {
            out.push_str(&format!(" speed={}", format_f64(*speed)));
        }
        InstanceDelta::ProcDeparture { proc } => {
            out.push_str(&format!(" proc={proc}"));
        }
        InstanceDelta::Bandwidth { bandwidth } => {
            out.push_str(&format!(" bandwidth={}", format_f64(*bandwidth)));
        }
        InstanceDelta::LinkBandwidth {
            from,
            to,
            bandwidth,
        } => {
            out.push_str(&format!(
                " from={from} to={to} bandwidth={}",
                format_f64(*bandwidth)
            ));
        }
        InstanceDelta::StageWeight { stage, work } => {
            out.push_str(&format!(" stage={stage} work={}", format_f64(*work)));
        }
    }
    out
}

/// One `cosched` line of the request stream (wire format v1.2): K tenant
/// pipelines to co-schedule onto the service's shared platform.
#[derive(Debug, Clone, PartialEq)]
pub struct WireCosched {
    /// Client correlation id, echoed back in the report.
    pub id: u64,
    /// Partition-objective label (`max-min`, `weighted-sum`, `slo`);
    /// validated by the service layer, opaque here.
    pub objective: String,
    /// One entry per tenant: an instance path, or `None` (wire token
    /// `-`) for the service's default instance. Paths must not contain
    /// spaces, commas or `=`.
    pub tenants: Vec<Option<String>>,
    /// Optional per-tenant weights (`weights=2:1`), index-aligned with
    /// `tenants`; absent means all-ones.
    pub weights: Option<Vec<f64>>,
    /// Optional per-tenant latency SLOs (`slos=1.5:-`), index-aligned
    /// with `tenants`; `None` entries (wire token `-`) mean "no SLO".
    pub slos: Option<Vec<Option<f64>>>,
    /// Inner-oracle solver selector (`auto`, `best`, `exact`, `h1`…`h7`);
    /// validated by the service layer, opaque here.
    pub strategy: String,
    /// Optional relative tolerance for the inner bound searches.
    pub tolerance: Option<f64>,
}

/// Parses one `cosched …` line.
pub fn parse_cosched(line: &str) -> std::result::Result<WireCosched, ParseError> {
    parse_cosched_at(line, 0)
}

/// [`parse_cosched`] with the request's 1-based position in its input
/// stream carried into parse errors, mirroring [`parse_request_at`].
pub fn parse_cosched_at(
    line: &str,
    line_no: usize,
) -> std::result::Result<WireCosched, ParseError> {
    let mut fields = WireFields::new(wire_tokens(line, "cosched", line_no)?, line_no);
    let id = {
        let v = fields.require("id")?;
        v.parse::<u64>()
            .map_err(|_| fields.field_err("id", format!("bad id {v:?}")))?
    };
    let objective = fields.require("objective")?;
    let tenants: Vec<Option<String>> = {
        let v = fields.require("tenants")?;
        v.split(',')
            .map(|t| match t {
                "" => Err(fields.field_err("tenants", "empty tenant entry".into())),
                "-" => Ok(None),
                path => Ok(Some(path.to_string())),
            })
            .collect::<std::result::Result<_, _>>()?
    };
    let weights = fields
        .take("weights")
        .map(|v| {
            let ws = v
                .split(':')
                .map(|w| {
                    w.parse::<f64>()
                        .map_err(|_| fields.field_err("weights", format!("bad weight {w:?}")))
                })
                .collect::<std::result::Result<Vec<f64>, _>>()?;
            if ws.len() != tenants.len() {
                return Err(fields.field_err(
                    "weights",
                    format!("{} weights for {} tenants", ws.len(), tenants.len()),
                ));
            }
            Ok(ws)
        })
        .transpose()?;
    let slos = fields
        .take("slos")
        .map(|v| {
            let ss = v
                .split(':')
                .map(|s| match s {
                    "-" => Ok(None),
                    other => other
                        .parse::<f64>()
                        .map(Some)
                        .map_err(|_| fields.field_err("slos", format!("bad slo {other:?}"))),
                })
                .collect::<std::result::Result<Vec<Option<f64>>, _>>()?;
            if ss.len() != tenants.len() {
                return Err(fields.field_err(
                    "slos",
                    format!("{} slos for {} tenants", ss.len(), tenants.len()),
                ));
            }
            Ok(ss)
        })
        .transpose()?;
    let strategy = fields.take("strategy").unwrap_or_else(|| "auto".into());
    let tolerance = fields.take_f64("tolerance")?;
    if tolerance.is_some_and(f64::is_nan) {
        return Err(fields.field_err("tolerance", "tolerance= must not be NaN".into()));
    }
    fields.finish()?;
    Ok(WireCosched {
        id,
        objective,
        tenants,
        weights,
        slos,
        strategy,
        tolerance,
    })
}

/// Formats one cosched request as a `cosched …` line (round-trips
/// through [`parse_cosched`]).
pub fn format_cosched(req: &WireCosched) -> String {
    let tenants: Vec<&str> = req
        .tenants
        .iter()
        .map(|t| t.as_deref().unwrap_or("-"))
        .collect();
    let mut out = format!(
        "cosched id={} objective={} tenants={}",
        req.id,
        req.objective,
        tenants.join(",")
    );
    if let Some(ws) = &req.weights {
        let ws: Vec<String> = ws.iter().map(|w| format_f64(*w)).collect();
        out.push_str(&format!(" weights={}", ws.join(":")));
    }
    if let Some(ss) = &req.slos {
        let ss: Vec<String> = ss
            .iter()
            .map(|s| s.map(format_f64).unwrap_or_else(|| "-".into()))
            .collect();
        out.push_str(&format!(" slos={}", ss.join(":")));
    }
    out.push_str(&format!(" strategy={}", req.strategy));
    if let Some(t) = req.tolerance {
        out.push_str(&format!(" tolerance={}", format_f64(t)));
    }
    out
}

/// One `stats` line of the request stream (wire format v1.2): asks the
/// service for its own counters.
#[derive(Debug, Clone, PartialEq)]
pub struct WireStats {
    /// Client correlation id, echoed back in the report.
    pub id: u64,
}

/// Parses one `stats …` line.
pub fn parse_stats(line: &str) -> std::result::Result<WireStats, ParseError> {
    parse_stats_at(line, 0)
}

/// [`parse_stats`] with the request's 1-based position in its input
/// stream carried into parse errors, mirroring [`parse_request_at`].
pub fn parse_stats_at(line: &str, line_no: usize) -> std::result::Result<WireStats, ParseError> {
    let mut fields = WireFields::new(wire_tokens(line, "stats", line_no)?, line_no);
    let id = {
        let v = fields.require("id")?;
        v.parse::<u64>()
            .map_err(|_| fields.field_err("id", format!("bad id {v:?}")))?
    };
    fields.finish()?;
    Ok(WireStats { id })
}

/// Formats one stats request as a `stats …` line (round-trips through
/// [`parse_stats`]).
pub fn format_stats(req: &WireStats) -> String {
    format!("stats id={}", req.id)
}

/// Parses one `report …` line.
pub fn parse_report(line: &str) -> std::result::Result<WireReport, ParseError> {
    let mut fields = WireFields::new(wire_tokens(line, "report", 0)?, 0);
    let id = {
        let v = fields.require("id")?;
        v.parse::<u64>()
            .map_err(|_| wire_err(format!("bad id {v:?}")))?
    };
    let status = fields.require("status")?;
    let report = match status.as_str() {
        "ok" if fields
            .fields
            .iter()
            .any(|(k, v)| k == "solver" && v == "cosched") =>
        {
            let _ = fields.require("solver")?;
            let objective = fields.require("objective")?;
            let score = fields.require_f64("score")?;
            let tiebreak = fields.require_f64("tiebreak")?;
            let feasible = match fields.require("feasible")?.as_str() {
                "true" => true,
                "false" => false,
                other => return Err(wire_err(format!("bad feasible {other:?}"))),
            };
            let partition: Vec<Vec<usize>> = fields
                .require("partition")?
                .split(';')
                .map(|group| {
                    group
                        .split(',')
                        .map(|t| {
                            t.parse::<usize>()
                                .map_err(|_| wire_err(format!("bad partition entry {t:?}")))
                        })
                        .collect::<std::result::Result<Vec<usize>, ParseError>>()
                })
                .collect::<std::result::Result<_, _>>()?;
            let parse_f64s = |v: String, what: &str| {
                v.split(';')
                    .map(|t| {
                        t.parse::<f64>()
                            .map_err(|_| wire_err(format!("bad {what} entry {t:?}")))
                    })
                    .collect::<std::result::Result<Vec<f64>, ParseError>>()
            };
            let periods = parse_f64s(fields.require("periods")?, "periods")?;
            let latencies = parse_f64s(fields.require("latencies")?, "latencies")?;
            let slo_met = fields
                .require("slo-met")?
                .split(';')
                .map(|t| match t {
                    "true" => Ok(true),
                    "false" => Ok(false),
                    other => Err(wire_err(format!("bad slo-met entry {other:?}"))),
                })
                .collect::<std::result::Result<Vec<bool>, ParseError>>()?;
            let k = partition.len();
            if periods.len() != k || latencies.len() != k || slo_met.len() != k {
                return Err(wire_err(format!(
                    "per-tenant arity mismatch: {k} groups, {} periods, {} latencies, {} slo-met",
                    periods.len(),
                    latencies.len(),
                    slo_met.len()
                )));
            }
            WireReport::Cosched(WireCoschedReport {
                id,
                objective,
                score,
                tiebreak,
                feasible,
                partition,
                periods,
                latencies,
                slo_met,
            })
        }
        "ok" if fields
            .fields
            .iter()
            .any(|(k, v)| k == "solver" && v == "stats") =>
        {
            let _ = fields.require("solver")?;
            WireReport::Stats(WireStatsReport {
                id,
                live: fields.require_u64("live")?,
                connections: fields.require_u64("connections")?,
                rejected: fields.require_u64("rejected")?,
                requests: fields.require_u64("requests")?,
                failures: fields.require_u64("failures")?,
                cache_hits: fields.require_u64("cache-hits")?,
                cache_misses: fields.require_u64("cache-misses")?,
                cache_evictions: fields.require_u64("cache-evictions")?,
                uptime_s: fields.require_u64("uptime-s")?,
            })
        }
        "ok" => {
            let solver = fields.require("solver")?;
            let period = fields
                .take_f64("period")?
                .ok_or_else(|| wire_err("missing period=".into()))?;
            let latency = fields
                .take_f64("latency")?
                .ok_or_else(|| wire_err("missing latency=".into()))?;
            let feasible = match fields.require("feasible")?.as_str() {
                "true" => true,
                "false" => false,
                other => return Err(wire_err(format!("bad feasible {other:?}"))),
            };
            let mapping = fields.require("mapping")?;
            let front = fields
                .take("front")
                .map(|v| {
                    v.split(';')
                        .map(|pt| {
                            let (p, l) = pt
                                .split_once(':')
                                .ok_or_else(|| wire_err(format!("bad front point {pt:?}")))?;
                            let parse = |s: &str| {
                                s.parse::<f64>()
                                    .map_err(|_| wire_err(format!("bad front number {s:?}")))
                            };
                            Ok((parse(p)?, parse(l)?))
                        })
                        .collect::<std::result::Result<Vec<_>, ParseError>>()
                })
                .transpose()?;
            WireReport::Solved(WireSolved {
                id,
                solver,
                period,
                latency,
                feasible,
                mapping,
                front,
            })
        }
        "error" => WireReport::Failed(WireFailure {
            id,
            code: fields.require("code")?,
            bound: fields.take_f64("bound")?,
            floor: fields.take_f64("floor")?,
            line: fields
                .take("line")
                .map(|v| {
                    v.parse::<u64>()
                        .map_err(|_| wire_err(format!("bad line number {v:?}")))
                })
                .transpose()?,
            key: fields.take("key"),
        }),
        other => return Err(wire_err(format!("unknown status {other:?}"))),
    };
    fields.finish()?;
    Ok(report)
}

/// Formats one report as a `report …` line (round-trips through
/// [`parse_report`]).
pub fn format_report(report: &WireReport) -> String {
    match report {
        WireReport::Solved(s) => {
            let mut out = format!(
                "report id={} status=ok solver={} period={} latency={} feasible={} mapping={}",
                s.id,
                s.solver,
                format_f64(s.period),
                format_f64(s.latency),
                s.feasible,
                s.mapping
            );
            if let Some(front) = &s.front {
                let pts: Vec<String> = front
                    .iter()
                    .map(|(p, l)| format!("{}:{}", format_f64(*p), format_f64(*l)))
                    .collect();
                out.push_str(&format!(" front={}", pts.join(";")));
            }
            out
        }
        WireReport::Cosched(c) => {
            let partition: Vec<String> = c
                .partition
                .iter()
                .map(|group| {
                    group
                        .iter()
                        .map(|u| u.to_string())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect();
            let f64s = |vals: &[f64]| {
                vals.iter()
                    .map(|v| format_f64(*v))
                    .collect::<Vec<_>>()
                    .join(";")
            };
            let slo_met: Vec<String> = c.slo_met.iter().map(|m| m.to_string()).collect();
            format!(
                "report id={} status=ok solver=cosched objective={} score={} tiebreak={} \
                 feasible={} partition={} periods={} latencies={} slo-met={}",
                c.id,
                c.objective,
                format_f64(c.score),
                format_f64(c.tiebreak),
                c.feasible,
                partition.join(";"),
                f64s(&c.periods),
                f64s(&c.latencies),
                slo_met.join(";")
            )
        }
        WireReport::Stats(s) => format!(
            "report id={} status=ok solver=stats live={} connections={} rejected={} \
             requests={} failures={} cache-hits={} cache-misses={} cache-evictions={} \
             uptime-s={}",
            s.id,
            s.live,
            s.connections,
            s.rejected,
            s.requests,
            s.failures,
            s.cache_hits,
            s.cache_misses,
            s.cache_evictions,
            s.uptime_s
        ),
        WireReport::Failed(f) => {
            let mut out = format!("report id={} status=error code={}", f.id, f.code);
            if let Some(b) = f.bound {
                out.push_str(&format!(" bound={}", format_f64(b)));
            }
            if let Some(fl) = f.floor {
                out.push_str(&format!(" floor={}", format_f64(fl)));
            }
            if let Some(line) = f.line {
                out.push_str(&format!(" line={line}"));
            }
            if let Some(key) = &f.key {
                out.push_str(&format!(" key={key}"));
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ExperimentKind, InstanceGenerator, InstanceParams};

    #[test]
    fn round_trip_comm_homogeneous() {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 8, 5));
        let (app, pf) = gen.instance(1, 0);
        let text = format_instance(&app, &pf);
        let (app2, pf2) = parse_instance(&text).expect("round trip parses");
        assert_eq!(app, app2);
        assert_eq!(pf, pf2);
    }

    #[test]
    fn round_trip_heterogeneous() {
        let app = Application::uniform(2, 1.5, 0.5).unwrap();
        let pf = Platform::fully_heterogeneous(
            vec![1.0, 2.0],
            vec![vec![8.0, 2.5], vec![4.0, 8.0]],
            8.0,
        )
        .unwrap();
        let text = format_instance(&app, &pf);
        let (app2, pf2) = parse_instance(&text).expect("round trip parses");
        assert_eq!(app, app2);
        // Diagonal entries default to io-bandwidth (8.0), matching.
        assert_eq!(pf, pf2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\npipeline-instance v1\nworks 1 2 # trailing\ndeltas 1 1 1\nspeeds 3\nbandwidth 10\n\n";
        let (app, pf) = parse_instance(text).expect("parses");
        assert_eq!(app.n_stages(), 2);
        assert_eq!(pf.n_procs(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            parse_instance("works 1\n").unwrap_err(),
            ParseError::BadHeader
        );
        assert_eq!(parse_instance("").unwrap_err(), ParseError::BadHeader);
    }

    #[test]
    fn missing_sections_rejected() {
        let text = "pipeline-instance v1\nworks 1\ndeltas 1 1\n";
        assert_eq!(
            parse_instance(text).unwrap_err(),
            ParseError::Missing("speeds")
        );
    }

    #[test]
    fn bad_numbers_carry_line_info() {
        let text = "pipeline-instance v1\nworks 1 oops\n";
        match parse_instance(text).unwrap_err() {
            ParseError::BadLine { line, detail } => {
                assert_eq!(line, 2);
                assert!(detail.contains("oops"));
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn model_validation_propagates() {
        let text = "pipeline-instance v1\nworks 1\ndeltas 1 1 1\nspeeds 1\nbandwidth 1\n";
        assert!(matches!(
            parse_instance(text).unwrap_err(),
            ParseError::Model(ModelError::DeltaLengthMismatch { .. })
        ));
    }

    #[test]
    fn mixed_bandwidth_declarations_rejected() {
        let text =
            "pipeline-instance v1\nworks 1\ndeltas 1 1\nspeeds 1\nbandwidth 1\nio-bandwidth 2\n";
        assert!(matches!(
            parse_instance(text).unwrap_err(),
            ParseError::BadLine { .. }
        ));
    }

    #[test]
    fn wire_request_round_trips() {
        let reqs = [
            WireRequest {
                id: 1,
                objective: WireObjective::MinPeriod,
                strategy: "auto".into(),
                tolerance: None,
                instance: None,
            },
            WireRequest {
                id: 2,
                objective: WireObjective::MinLatencyForPeriod(2.5),
                strategy: "best".into(),
                tolerance: Some(1e-9),
                instance: Some("a/b.pw".into()),
            },
            WireRequest {
                id: 3,
                objective: WireObjective::ParetoFront,
                strategy: "exact".into(),
                tolerance: None,
                instance: None,
            },
        ];
        for req in reqs {
            let line = format_request(&req);
            assert_eq!(parse_request(&line).expect("round trip"), req, "{line}");
        }
    }

    #[test]
    fn wire_request_defaults_and_errors() {
        let req = parse_request("solve id=7 objective=min-latency").expect("minimal line");
        assert_eq!(req.strategy, "auto");
        assert_eq!(req.objective, WireObjective::MinLatency);
        assert!(parse_request("solve objective=min-period").is_err()); // no id
        assert!(parse_request("solve id=1 objective=min-latency-for-period").is_err()); // no bound
        assert!(parse_request("solve id=1 objective=min-period bound=2").is_err()); // stray bound
        assert!(parse_request("solve id=1 objective=nope").is_err());
        assert!(parse_request("solve id=1 objective=min-period junk=1").is_err());
        assert!(parse_request("report id=1 status=ok").is_err()); // wrong verb
    }

    #[test]
    fn wire_update_round_trips() {
        let updates = [
            WireUpdate {
                id: 1,
                delta: InstanceDelta::ProcSpeed {
                    proc: 2,
                    speed: 4.5,
                },
            },
            WireUpdate {
                id: 2,
                delta: InstanceDelta::ProcArrival { speed: 0.125 },
            },
            WireUpdate {
                id: 3,
                delta: InstanceDelta::ProcDeparture { proc: 0 },
            },
            WireUpdate {
                id: 4,
                delta: InstanceDelta::Bandwidth { bandwidth: 16.0 },
            },
            WireUpdate {
                id: 5,
                delta: InstanceDelta::LinkBandwidth {
                    from: 1,
                    to: 3,
                    bandwidth: 2.5,
                },
            },
            WireUpdate {
                id: 6,
                delta: InstanceDelta::StageWeight {
                    stage: 7,
                    work: 1e-3,
                },
            },
        ];
        for upd in updates {
            let line = format_update(&upd);
            assert_eq!(parse_update(&line).expect("round trip"), upd, "{line}");
        }
    }

    #[test]
    fn wire_update_errors_name_the_line_and_key() {
        let err = parse_update_at("update id=1 delta=teleport", 11).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(11), Some("delta")));
        let err = parse_update_at("update id=1 delta=proc-speed proc=0", 12).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(12), Some("speed")));
        let err = parse_update_at("update id=1 delta=proc-speed proc=-1 speed=2", 13).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(13), Some("proc")));
        let err = parse_update_at("update delta=bandwidth bandwidth=1", 14).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(14), Some("id")));
        let err = parse_update_at("update id=1 delta=stage-weight stage=0 work=1 junk=1", 15)
            .unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(15), Some("junk")));
        // Wrong verb: a line-only diagnosis, like solve.
        let err = parse_update_at("solve id=1 objective=min-period", 16).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(16), None));
    }

    #[test]
    fn wire_report_round_trips() {
        let reports = [
            WireReport::Solved(WireSolved {
                id: 4,
                solver: "h3".into(),
                period: 1.25,
                latency: 10.5,
                feasible: true,
                mapping: "0-2@1,2-5@0".into(),
                front: None,
            }),
            WireReport::Solved(WireSolved {
                id: 5,
                solver: "exact".into(),
                period: 1.0,
                latency: 9.0,
                feasible: true,
                mapping: "0-6@2".into(),
                front: Some(vec![(1.0, 9.0), (2.0, 6.0), (4.0, 3.0)]),
            }),
            WireReport::Failed(WireFailure {
                id: 6,
                code: "bound-below-floor".into(),
                bound: Some(0.5),
                floor: Some(0.875),
                line: None,
                key: None,
            }),
            WireReport::Failed(
                WireFailure::new(0, "bad-request")
                    .at_line(7)
                    .for_key("bound"),
            ),
            WireReport::Failed(WireFailure::new(0, "line-too-long").at_line(3)),
            // Budget refusals emitted by the serve path: a request quota
            // or connection deadline exhausted mid-session.
            WireReport::Failed(WireFailure::new(0, "quota-exceeded").at_line(9)),
            WireReport::Failed(WireFailure::new(0, "deadline-exceeded").at_line(2)),
        ];
        for report in reports {
            let line = format_report(&report);
            assert_eq!(parse_report(&line).expect("round trip"), report, "{line}");
            assert_eq!(report.id(), parse_report(&line).unwrap().id());
        }
    }

    #[test]
    fn serve_refusal_codes_cross_the_wire_verbatim() {
        // The serve path refuses over-budget connections with these
        // exact lines; clients key on the code, so pin both directions.
        let table = [
            (
                "report id=0 status=error code=quota-exceeded line=3",
                WireFailure::new(0, "quota-exceeded").at_line(3),
            ),
            (
                "report id=0 status=error code=deadline-exceeded line=2",
                WireFailure::new(0, "deadline-exceeded").at_line(2),
            ),
        ];
        for (line, failure) in table {
            let report = WireReport::Failed(failure);
            assert_eq!(format_report(&report), line);
            assert_eq!(parse_report(line).expect("parses"), report);
        }
    }

    #[test]
    fn request_parse_errors_name_the_line_and_key() {
        // Unknown objective: the error points at the objective field.
        let err = parse_request_at("solve id=1 objective=take-a-guess", 29).unwrap_err();
        assert_eq!(err.line(), Some(29));
        assert_eq!(err.key(), Some("objective"));
        // Missing bound on a bounded objective.
        let err = parse_request_at("solve id=1 objective=min-latency-for-period", 4).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(4), Some("bound")));
        // Unparseable number.
        let err = parse_request_at("solve id=1 objective=min-latency-for-period bound=oops", 5)
            .unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(5), Some("bound")));
        // Unknown key.
        let err = parse_request_at("solve id=1 objective=min-period junk=1", 6).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(6), Some("junk")));
        // Bad id.
        let err = parse_request_at("solve id=x objective=min-period", 7).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(7), Some("id")));
        // A wrong verb has no key, only a line.
        let err = parse_request_at("frobnicate id=1", 8).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(8), None));
        // Line 0 means "unknown position": no line reported.
        let err = parse_request("solve id=1 objective=nope").unwrap_err();
        assert_eq!((err.line(), err.key()), (None, Some("objective")));
    }

    #[test]
    fn wire_cosched_round_trips() {
        let reqs = [
            WireCosched {
                id: 1,
                objective: "max-min".into(),
                tenants: vec![None, None],
                weights: None,
                slos: None,
                strategy: "auto".into(),
                tolerance: None,
            },
            WireCosched {
                id: 2,
                objective: "weighted-sum".into(),
                tenants: vec![Some("a/b.pw".into()), None, Some("c.pw".into())],
                weights: Some(vec![2.0, 1.0, 0.5]),
                slos: Some(vec![Some(1.5), None, Some(12.25)]),
                strategy: "best".into(),
                tolerance: Some(1e-9),
            },
        ];
        for req in reqs {
            let line = format_cosched(&req);
            assert_eq!(parse_cosched(&line).expect("round trip"), req, "{line}");
        }
    }

    #[test]
    fn wire_cosched_errors_name_the_line_and_key() {
        let err = parse_cosched_at("cosched id=1 tenants=-", 3).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(3), Some("objective")));
        let err = parse_cosched_at("cosched id=1 objective=max-min", 4).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(4), Some("tenants")));
        let err = parse_cosched_at("cosched id=1 objective=max-min tenants=-,,-", 5).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(5), Some("tenants")));
        // Arity mismatches are parse-time field errors.
        let err = parse_cosched_at("cosched id=1 objective=max-min tenants=-,- weights=1", 6)
            .unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(6), Some("weights")));
        let err =
            parse_cosched_at("cosched id=1 objective=max-min tenants=- slos=1:2", 7).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(7), Some("slos")));
        let err =
            parse_cosched_at("cosched id=1 objective=max-min tenants=- slos=oops", 8).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(8), Some("slos")));
        let err =
            parse_cosched_at("cosched id=1 objective=max-min tenants=- junk=1", 9).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(9), Some("junk")));
        // Defaults: no weights/slos/tolerance, auto strategy.
        let req = parse_cosched("cosched id=1 objective=slo tenants=-").expect("minimal");
        assert_eq!(req.strategy, "auto");
        assert_eq!((req.weights, req.slos, req.tolerance), (None, None, None));
    }

    #[test]
    fn wire_stats_round_trips_and_rejects_extras() {
        let req = WireStats { id: 42 };
        let line = format_stats(&req);
        assert_eq!(parse_stats(&line).expect("round trip"), req, "{line}");
        let err = parse_stats_at("stats", 2).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(2), Some("id")));
        let err = parse_stats_at("stats id=1 junk=2", 3).unwrap_err();
        assert_eq!((err.line(), err.key()), (Some(3), Some("junk")));
    }

    #[test]
    fn cosched_and_stats_reports_round_trip() {
        let reports = [
            WireReport::Cosched(WireCoschedReport {
                id: 6,
                objective: "max-min".into(),
                score: 3.0,
                tiebreak: 5.5,
                feasible: true,
                partition: vec![vec![0, 2], vec![1], vec![3, 4, 5]],
                periods: vec![1.5, 2.0, 0.75],
                latencies: vec![4.0, 6.0, 2.5],
                slo_met: vec![true, true, false],
            }),
            WireReport::Stats(WireStatsReport {
                id: 7,
                live: 1,
                connections: 3,
                rejected: 0,
                requests: 9,
                failures: 1,
                cache_hits: 4,
                cache_misses: 2,
                cache_evictions: 0,
                uptime_s: 12,
            }),
        ];
        for report in reports {
            let line = format_report(&report);
            assert_eq!(parse_report(&line).expect("round trip"), report, "{line}");
            assert_eq!(report.id(), parse_report(&line).unwrap().id());
        }
    }

    #[test]
    fn cosched_report_rejects_arity_mismatch() {
        // 2 groups but 1 period.
        let line = "report id=1 status=ok solver=cosched objective=max-min score=1 \
                    tiebreak=2 feasible=true partition=0;1 periods=1 latencies=1;2 \
                    slo-met=true;true";
        assert!(parse_report(line).is_err());
        // A solver named cosched must carry cosched fields, not solve fields.
        let line = "report id=1 status=ok solver=cosched period=1 latency=1 feasible=true \
                    mapping=0-1@0";
        assert!(parse_report(line).is_err());
    }

    #[test]
    fn wire_report_rejects_malformed_lines() {
        assert!(parse_report("report id=1 status=bogus").is_err());
        assert!(parse_report("report id=1 status=ok solver=h1").is_err()); // missing fields
        assert!(parse_report(
            "report id=1 status=ok solver=h1 period=x latency=1 feasible=true mapping=0-1@0"
        )
        .is_err());
        assert!(parse_report(
            "report id=1 status=ok solver=h1 period=1 latency=1 feasible=maybe mapping=0-1@0"
        )
        .is_err());
        assert!(parse_report("report id=1 status=error").is_err()); // no code
    }

    #[test]
    fn link_to_unknown_processor_rejected() {
        let text =
            "pipeline-instance v1\nworks 1\ndeltas 1 1\nspeeds 1\nio-bandwidth 2\nlink 0 5 1\n";
        assert!(matches!(
            parse_instance(text).unwrap_err(),
            ParseError::Model(_)
        ));
    }
}
