//! Plain-text instance serialization.
//!
//! A tiny line-oriented format so instances can be saved, diffed, shipped
//! in bug reports and loaded by the examples — without pulling a
//! serialization framework into the workspace:
//!
//! ```text
//! # anything after '#' is a comment
//! pipeline-instance v1
//! works    4 8 2
//! deltas   2 6 4 10
//! speeds   2 4
//! bandwidth 2
//! ```
//!
//! `bandwidth` declares a Communication Homogeneous platform; fully
//! heterogeneous platforms add one `link u v b` line per directed pair
//! (unlisted pairs default to `io-bandwidth`):
//!
//! ```text
//! pipeline-instance v1
//! works    1 1
//! deltas   1 1 1
//! speeds   1 1
//! io-bandwidth 8
//! link 0 1 2.5
//! link 1 0 4
//! ```

use crate::application::Application;
use crate::platform::{LinkModel, Platform};
use crate::{ModelError, Result};

/// Errors raised while parsing the text format.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// The `pipeline-instance v1` header is missing or wrong.
    BadHeader,
    /// A required section is missing.
    Missing(&'static str),
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        detail: String,
    },
    /// Parsed values failed model validation.
    Model(ModelError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader => write!(f, "missing 'pipeline-instance v1' header"),
            ParseError::Missing(what) => write!(f, "missing '{what}' section"),
            ParseError::BadLine { line, detail } => write!(f, "line {line}: {detail}"),
            ParseError::Model(e) => write!(f, "invalid instance: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

impl From<ModelError> for ParseError {
    fn from(e: ModelError) -> Self {
        ParseError::Model(e)
    }
}

/// Serializes an instance to the v1 text format.
pub fn format_instance(app: &Application, platform: &Platform) -> String {
    let mut out = String::from("pipeline-instance v1\n");
    let join = |vals: &[f64]| {
        vals.iter()
            .map(|v| format_f64(*v))
            .collect::<Vec<_>>()
            .join(" ")
    };
    out.push_str(&format!("works {}\n", join(app.works())));
    out.push_str(&format!("deltas {}\n", join(app.deltas())));
    out.push_str(&format!("speeds {}\n", join(platform.speeds())));
    match platform.links() {
        LinkModel::Homogeneous(b) => {
            out.push_str(&format!("bandwidth {}\n", format_f64(*b)));
        }
        LinkModel::Heterogeneous {
            matrix,
            io_bandwidth,
        } => {
            out.push_str(&format!("io-bandwidth {}\n", format_f64(*io_bandwidth)));
            for (u, row) in matrix.iter().enumerate() {
                for (v, b) in row.iter().enumerate() {
                    if u != v {
                        out.push_str(&format!("link {u} {v} {}\n", format_f64(*b)));
                    }
                }
            }
        }
    }
    out
}

fn format_f64(v: f64) -> String {
    // Shortest representation that round-trips.
    let s = format!("{v}");
    debug_assert_eq!(s.parse::<f64>().ok(), Some(v));
    s
}

/// Parses the v1 text format back into an instance.
pub fn parse_instance(text: &str) -> std::result::Result<(Application, Platform), ParseError> {
    let mut works: Option<Vec<f64>> = None;
    let mut deltas: Option<Vec<f64>> = None;
    let mut speeds: Option<Vec<f64>> = None;
    let mut bandwidth: Option<f64> = None;
    let mut io_bandwidth: Option<f64> = None;
    let mut links: Vec<(usize, usize, f64)> = Vec::new();
    let mut saw_header = false;

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if !saw_header {
            if line == "pipeline-instance v1" {
                saw_header = true;
                continue;
            }
            return Err(ParseError::BadHeader);
        }
        let mut tokens = line.split_whitespace();
        let key = tokens.next().expect("non-empty line");
        let rest: Vec<&str> = tokens.collect();
        let parse_vec = |rest: &[&str]| -> std::result::Result<Vec<f64>, ParseError> {
            rest.iter()
                .map(|t| {
                    t.parse::<f64>().map_err(|_| ParseError::BadLine {
                        line: line_no,
                        detail: format!("bad number {t:?}"),
                    })
                })
                .collect()
        };
        let parse_one = |rest: &[&str]| -> std::result::Result<f64, ParseError> {
            if rest.len() != 1 {
                return Err(ParseError::BadLine {
                    line: line_no,
                    detail: format!("expected one value, got {}", rest.len()),
                });
            }
            parse_vec(rest).map(|v| v[0])
        };
        match key {
            "works" => works = Some(parse_vec(&rest)?),
            "deltas" => deltas = Some(parse_vec(&rest)?),
            "speeds" => speeds = Some(parse_vec(&rest)?),
            "bandwidth" => bandwidth = Some(parse_one(&rest)?),
            "io-bandwidth" => io_bandwidth = Some(parse_one(&rest)?),
            "link" => {
                if rest.len() != 3 {
                    return Err(ParseError::BadLine {
                        line: line_no,
                        detail: "link wants: link <from> <to> <bandwidth>".into(),
                    });
                }
                let u = rest[0].parse::<usize>().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    detail: format!("bad processor id {:?}", rest[0]),
                })?;
                let v = rest[1].parse::<usize>().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    detail: format!("bad processor id {:?}", rest[1]),
                })?;
                let b = rest[2].parse::<f64>().map_err(|_| ParseError::BadLine {
                    line: line_no,
                    detail: format!("bad bandwidth {:?}", rest[2]),
                })?;
                links.push((u, v, b));
            }
            other => {
                return Err(ParseError::BadLine {
                    line: line_no,
                    detail: format!("unknown key {other:?}"),
                })
            }
        }
    }

    if !saw_header {
        return Err(ParseError::BadHeader);
    }
    let works = works.ok_or(ParseError::Missing("works"))?;
    let deltas = deltas.ok_or(ParseError::Missing("deltas"))?;
    let speeds = speeds.ok_or(ParseError::Missing("speeds"))?;
    let app = Application::new(works, deltas)?;
    let platform = match (bandwidth, io_bandwidth) {
        (Some(b), None) if links.is_empty() => Platform::comm_homogeneous(speeds, b)?,
        (None, Some(io_b)) => {
            let p = speeds.len();
            let mut matrix = vec![vec![io_b; p]; p];
            for (u, v, b) in links {
                if u >= p || v >= p {
                    return Err(ParseError::Model(ModelError::BadAllocation {
                        detail: format!("link references unknown processor P{}", u.max(v)),
                    }));
                }
                matrix[u][v] = b;
            }
            Platform::fully_heterogeneous(speeds, matrix, io_b)?
        }
        (Some(_), Some(_)) => {
            return Err(ParseError::BadLine {
                line: 0,
                detail: "give either 'bandwidth' or 'io-bandwidth'+links, not both".into(),
            })
        }
        (Some(_), None) => {
            return Err(ParseError::BadLine {
                line: 0,
                detail: "'link' lines require 'io-bandwidth', not 'bandwidth'".into(),
            })
        }
        (None, None) => return Err(ParseError::Missing("bandwidth")),
    };
    Ok((app, platform))
}

/// Convenience alias keeping the crate-level [`Result`] usable here.
pub type _Unused = Result<()>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{ExperimentKind, InstanceGenerator, InstanceParams};

    #[test]
    fn round_trip_comm_homogeneous() {
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, 8, 5));
        let (app, pf) = gen.instance(1, 0);
        let text = format_instance(&app, &pf);
        let (app2, pf2) = parse_instance(&text).expect("round trip parses");
        assert_eq!(app, app2);
        assert_eq!(pf, pf2);
    }

    #[test]
    fn round_trip_heterogeneous() {
        let app = Application::uniform(2, 1.5, 0.5).unwrap();
        let pf = Platform::fully_heterogeneous(
            vec![1.0, 2.0],
            vec![vec![8.0, 2.5], vec![4.0, 8.0]],
            8.0,
        )
        .unwrap();
        let text = format_instance(&app, &pf);
        let (app2, pf2) = parse_instance(&text).expect("round trip parses");
        assert_eq!(app, app2);
        // Diagonal entries default to io-bandwidth (8.0), matching.
        assert_eq!(pf, pf2);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# a comment\npipeline-instance v1\nworks 1 2 # trailing\ndeltas 1 1 1\nspeeds 3\nbandwidth 10\n\n";
        let (app, pf) = parse_instance(text).expect("parses");
        assert_eq!(app.n_stages(), 2);
        assert_eq!(pf.n_procs(), 1);
    }

    #[test]
    fn missing_header_rejected() {
        assert_eq!(
            parse_instance("works 1\n").unwrap_err(),
            ParseError::BadHeader
        );
        assert_eq!(parse_instance("").unwrap_err(), ParseError::BadHeader);
    }

    #[test]
    fn missing_sections_rejected() {
        let text = "pipeline-instance v1\nworks 1\ndeltas 1 1\n";
        assert_eq!(
            parse_instance(text).unwrap_err(),
            ParseError::Missing("speeds")
        );
    }

    #[test]
    fn bad_numbers_carry_line_info() {
        let text = "pipeline-instance v1\nworks 1 oops\n";
        match parse_instance(text).unwrap_err() {
            ParseError::BadLine { line, detail } => {
                assert_eq!(line, 2);
                assert!(detail.contains("oops"));
            }
            other => panic!("expected BadLine, got {other:?}"),
        }
    }

    #[test]
    fn model_validation_propagates() {
        let text = "pipeline-instance v1\nworks 1\ndeltas 1 1 1\nspeeds 1\nbandwidth 1\n";
        assert!(matches!(
            parse_instance(text).unwrap_err(),
            ParseError::Model(ModelError::DeltaLengthMismatch { .. })
        ));
    }

    #[test]
    fn mixed_bandwidth_declarations_rejected() {
        let text =
            "pipeline-instance v1\nworks 1\ndeltas 1 1\nspeeds 1\nbandwidth 1\nio-bandwidth 2\n";
        assert!(matches!(
            parse_instance(text).unwrap_err(),
            ParseError::BadLine { .. }
        ));
    }

    #[test]
    fn link_to_unknown_processor_rejected() {
        let text =
            "pipeline-instance v1\nworks 1\ndeltas 1 1\nspeeds 1\nio-bandwidth 2\nlink 0 5 1\n";
        assert!(matches!(
            parse_instance(text).unwrap_err(),
            ParseError::Model(_)
        ));
    }
}
