//! The application side of the framework: a linear pipeline of stages.

use crate::util::PrefixSums;
use crate::{ModelError, Result};

/// A pipeline application of `n` stages (paper Figure 1).
///
/// Stage `k` (0-based in code, `S_{k+1}` in the paper) receives `δ_k =
/// deltas[k]` data units from its predecessor (stage 0 reads `deltas[0]`
/// from the outside world), performs `works[k]` operations, and sends
/// `deltas[k + 1]` data units to its successor (the last stage writes
/// `deltas[n]` back to the outside world).
///
/// The structure is immutable after construction and carries prefix sums of
/// the works so that interval workloads `W(i..j)` are O(1) queries — the
/// split heuristics evaluate many thousands of candidate intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct Application {
    works: Vec<f64>,
    deltas: Vec<f64>,
    work_sums: PrefixSums,
}

impl Application {
    /// Builds an application from per-stage works `w_1..w_n` and
    /// communication volumes `δ_0..δ_n` (`deltas.len() == works.len() + 1`).
    ///
    /// # Errors
    ///
    /// * [`ModelError::EmptyApplication`] when `works` is empty;
    /// * [`ModelError::DeltaLengthMismatch`] on a length mismatch;
    /// * [`ModelError::InvalidNumber`] when any work or volume is negative,
    ///   NaN or infinite.
    pub fn new(works: Vec<f64>, deltas: Vec<f64>) -> Result<Self> {
        if works.is_empty() {
            return Err(ModelError::EmptyApplication);
        }
        if deltas.len() != works.len() + 1 {
            return Err(ModelError::DeltaLengthMismatch {
                stages: works.len(),
                deltas: deltas.len(),
            });
        }
        for &w in &works {
            if !w.is_finite() || w < 0.0 {
                return Err(ModelError::InvalidNumber {
                    what: "stage work",
                    value: w,
                });
            }
        }
        for &d in &deltas {
            if !d.is_finite() || d < 0.0 {
                return Err(ModelError::InvalidNumber {
                    what: "communication volume",
                    value: d,
                });
            }
        }
        let work_sums = PrefixSums::new(&works);
        Ok(Application {
            works,
            deltas,
            work_sums,
        })
    }

    /// An application whose every stage computes `w` and whose every
    /// communication carries `delta` data units. Handy in tests.
    pub fn uniform(n: usize, w: f64, delta: f64) -> Result<Self> {
        Application::new(vec![w; n], vec![delta; n + 1])
    }

    /// Number of stages `n`.
    #[inline]
    pub fn n_stages(&self) -> usize {
        self.works.len()
    }

    /// Work `w_{k+1}` of stage `k` (0-based).
    #[inline]
    pub fn work(&self, k: usize) -> f64 {
        self.works[k]
    }

    /// All stage works.
    #[inline]
    pub fn works(&self) -> &[f64] {
        &self.works
    }

    /// Communication volume `δ_k`: the data *entering* stage `k`
    /// (equivalently leaving stage `k - 1`). `delta(n)` is the final
    /// output volume.
    #[inline]
    pub fn delta(&self, k: usize) -> f64 {
        self.deltas[k]
    }

    /// All communication volumes `δ_0..δ_n`.
    #[inline]
    pub fn deltas(&self) -> &[f64] {
        &self.deltas
    }

    /// Total work `Σ w_i` of the pipeline.
    #[inline]
    pub fn total_work(&self) -> f64 {
        self.work_sums.total()
    }

    /// Work of the stage interval `[start, end)` (half-open, 0-based):
    /// `Σ_{i=start}^{end-1} w_{i+1}` in paper notation. O(1).
    #[inline]
    pub fn interval_work(&self, start: usize, end: usize) -> f64 {
        self.work_sums.range(start, end)
    }

    /// Volume read by the interval starting at stage `start`: `δ_start`.
    #[inline]
    pub fn input_volume(&self, start: usize) -> f64 {
        self.deltas[start]
    }

    /// Volume written by the interval ending before stage `end`
    /// (half-open): `δ_end`.
    #[inline]
    pub fn output_volume(&self, end: usize) -> f64 {
        self.deltas[end]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq;

    fn app() -> Application {
        Application::new(vec![2.0, 4.0, 6.0], vec![1.0, 3.0, 5.0, 7.0]).unwrap()
    }

    #[test]
    fn accessors_match_construction() {
        let a = app();
        assert_eq!(a.n_stages(), 3);
        assert!(approx_eq(a.work(1), 4.0));
        assert!(approx_eq(a.delta(0), 1.0));
        assert!(approx_eq(a.delta(3), 7.0));
        assert!(approx_eq(a.total_work(), 12.0));
    }

    #[test]
    fn interval_work_is_prefix_difference() {
        let a = app();
        assert!(approx_eq(a.interval_work(0, 3), 12.0));
        assert!(approx_eq(a.interval_work(1, 2), 4.0));
        assert!(approx_eq(a.interval_work(2, 2), 0.0));
    }

    #[test]
    fn interval_volumes() {
        let a = app();
        assert!(approx_eq(a.input_volume(0), 1.0));
        assert!(approx_eq(a.output_volume(3), 7.0));
        // Interval [1,2) reads δ_1 and writes δ_2.
        assert!(approx_eq(a.input_volume(1), 3.0));
        assert!(approx_eq(a.output_volume(2), 5.0));
    }

    #[test]
    fn uniform_constructor() {
        let a = Application::uniform(4, 2.5, 1.5).unwrap();
        assert_eq!(a.n_stages(), 4);
        assert!(a.works().iter().all(|&w| approx_eq(w, 2.5)));
        assert!(a.deltas().iter().all(|&d| approx_eq(d, 1.5)));
        assert_eq!(a.deltas().len(), 5);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            Application::new(vec![], vec![1.0]).unwrap_err(),
            ModelError::EmptyApplication
        );
    }

    #[test]
    fn rejects_wrong_delta_count() {
        let err = Application::new(vec![1.0, 2.0], vec![1.0, 2.0]).unwrap_err();
        assert_eq!(
            err,
            ModelError::DeltaLengthMismatch {
                stages: 2,
                deltas: 2
            }
        );
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(matches!(
            Application::new(vec![-1.0], vec![0.0, 0.0]).unwrap_err(),
            ModelError::InvalidNumber {
                what: "stage work",
                ..
            }
        ));
        assert!(matches!(
            Application::new(vec![1.0], vec![0.0, f64::NAN]).unwrap_err(),
            ModelError::InvalidNumber {
                what: "communication volume",
                ..
            }
        ));
        assert!(matches!(
            Application::new(vec![f64::INFINITY], vec![0.0, 0.0]).unwrap_err(),
            ModelError::InvalidNumber { .. }
        ));
    }

    #[test]
    fn zero_work_stages_are_allowed() {
        // Zero-work relay stages are legal (pure data forwarding).
        let a = Application::new(vec![0.0, 1.0], vec![1.0, 1.0, 1.0]).unwrap();
        assert!(approx_eq(a.total_work(), 1.0));
    }
}
