//! Instance deltas: small, validated edits to a running instance.
//!
//! Production platforms churn while the pipeline keeps running:
//! processors join and leave, speeds drift with thermal envelopes and
//! co-tenants, stage weights change per release. [`InstanceDelta`]
//! captures one such edit; [`InstanceDelta::apply_to`] rebuilds the
//! `(Application, Platform)` pair through the ordinary validating
//! constructors, so an applied delta is exactly as trustworthy as a
//! freshly parsed instance. The session layer
//! (`pipeline_core::service::PreparedInstance::apply`) consumes these to
//! re-solve incrementally instead of from scratch.

use crate::application::Application;
use crate::platform::{LinkModel, Platform, ProcId};
use crate::ModelError;

/// One edit to a live instance.
///
/// Deltas are deliberately single-field: an update stream is a sequence
/// of deltas, and every prefix of the stream is itself a valid instance.
/// Validation (positivity, finiteness, index bounds) happens in
/// [`InstanceDelta::apply_to`], through the same constructors that guard
/// parsed instances.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceDelta {
    /// Processor `proc` now runs at `speed` (drift, DVFS, co-tenancy).
    ProcSpeed {
        /// Which processor changed.
        proc: ProcId,
        /// Its new speed.
        speed: f64,
    },
    /// A new processor joins with the given speed. It receives the next
    /// free id (`n_procs` before the delta). On fully heterogeneous
    /// platforms its links default to the outside-world bandwidth.
    ProcArrival {
        /// Speed of the arriving processor.
        speed: f64,
    },
    /// Processor `proc` leaves; every higher id shifts down by one (the
    /// wire format and mappings always address the *current* platform).
    ProcDeparture {
        /// Which processor left.
        proc: ProcId,
    },
    /// The shared link bandwidth of a Communication Homogeneous platform
    /// changes. Rejected on fully heterogeneous platforms — use
    /// [`InstanceDelta::LinkBandwidth`] there.
    Bandwidth {
        /// The new shared bandwidth `b`.
        bandwidth: f64,
    },
    /// One directed link of a fully heterogeneous platform changes.
    /// Rejected on Communication Homogeneous platforms.
    LinkBandwidth {
        /// Sending processor.
        from: ProcId,
        /// Receiving processor.
        to: ProcId,
        /// The new bandwidth of `link_{from,to}`.
        bandwidth: f64,
    },
    /// Stage `stage` now performs `work` operations per data set.
    StageWeight {
        /// Which stage changed (0-based).
        stage: usize,
        /// Its new computational weight.
        work: f64,
    },
}

/// Why a delta could not be applied.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// The delta names a processor the platform does not have.
    UnknownProc {
        /// The offending id.
        proc: ProcId,
        /// Number of processors on the platform.
        n_procs: usize,
    },
    /// The delta names a stage the application does not have.
    UnknownStage {
        /// The offending index.
        stage: usize,
        /// Number of stages in the application.
        n_stages: usize,
    },
    /// A departure would leave the platform empty.
    LastProc,
    /// `Bandwidth` on a heterogeneous platform, or `LinkBandwidth` on a
    /// Communication Homogeneous one.
    WrongLinkModel {
        /// What the delta expected to find.
        expected: &'static str,
    },
    /// The edited instance failed model validation (bad number, …).
    Invalid(ModelError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownProc { proc, n_procs } => {
                write!(f, "no processor {proc} on a platform of {n_procs}")
            }
            DeltaError::UnknownStage { stage, n_stages } => {
                write!(f, "no stage {stage} in a pipeline of {n_stages}")
            }
            DeltaError::LastProc => write!(f, "cannot remove the last processor"),
            DeltaError::WrongLinkModel { expected } => {
                write!(f, "delta requires a {expected} platform")
            }
            DeltaError::Invalid(err) => write!(f, "edited instance is invalid: {err}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<ModelError> for DeltaError {
    fn from(err: ModelError) -> Self {
        DeltaError::Invalid(err)
    }
}

impl InstanceDelta {
    /// Applies the edit, returning the new instance. The inputs are
    /// untouched; both halves go through the validating constructors, so
    /// `Ok` implies a fully valid instance.
    pub fn apply_to(
        &self,
        app: &Application,
        platform: &Platform,
    ) -> Result<(Application, Platform), DeltaError> {
        match *self {
            InstanceDelta::ProcSpeed { proc, speed } => {
                check_proc(proc, platform)?;
                let mut speeds = platform.speeds().to_vec();
                speeds[proc] = speed;
                Ok((app.clone(), rebuild_platform(speeds, platform.links())?))
            }
            InstanceDelta::ProcArrival { speed } => {
                let mut speeds = platform.speeds().to_vec();
                speeds.push(speed);
                let links = match platform.links() {
                    LinkModel::Homogeneous(b) => LinkModel::Homogeneous(*b),
                    LinkModel::Heterogeneous {
                        matrix,
                        io_bandwidth,
                    } => {
                        let mut grown: Vec<Vec<f64>> = matrix.clone();
                        for row in &mut grown {
                            row.push(*io_bandwidth);
                        }
                        grown.push(vec![*io_bandwidth; speeds.len()]);
                        LinkModel::Heterogeneous {
                            matrix: grown,
                            io_bandwidth: *io_bandwidth,
                        }
                    }
                };
                Ok((app.clone(), rebuild_platform(speeds, &links)?))
            }
            InstanceDelta::ProcDeparture { proc } => {
                check_proc(proc, platform)?;
                if platform.n_procs() == 1 {
                    return Err(DeltaError::LastProc);
                }
                let mut speeds = platform.speeds().to_vec();
                speeds.remove(proc);
                let links = match platform.links() {
                    LinkModel::Homogeneous(b) => LinkModel::Homogeneous(*b),
                    LinkModel::Heterogeneous {
                        matrix,
                        io_bandwidth,
                    } => {
                        let mut shrunk: Vec<Vec<f64>> = matrix.clone();
                        shrunk.remove(proc);
                        for row in &mut shrunk {
                            row.remove(proc);
                        }
                        LinkModel::Heterogeneous {
                            matrix: shrunk,
                            io_bandwidth: *io_bandwidth,
                        }
                    }
                };
                Ok((app.clone(), rebuild_platform(speeds, &links)?))
            }
            InstanceDelta::Bandwidth { bandwidth } => {
                if !platform.is_comm_homogeneous() {
                    return Err(DeltaError::WrongLinkModel {
                        expected: "Communication Homogeneous",
                    });
                }
                Ok((
                    app.clone(),
                    Platform::comm_homogeneous(platform.speeds().to_vec(), bandwidth)?,
                ))
            }
            InstanceDelta::LinkBandwidth {
                from,
                to,
                bandwidth,
            } => {
                check_proc(from, platform)?;
                check_proc(to, platform)?;
                match platform.links() {
                    LinkModel::Homogeneous(_) => Err(DeltaError::WrongLinkModel {
                        expected: "fully heterogeneous",
                    }),
                    LinkModel::Heterogeneous {
                        matrix,
                        io_bandwidth,
                    } => {
                        let mut edited = matrix.clone();
                        edited[from][to] = bandwidth;
                        Ok((
                            app.clone(),
                            Platform::fully_heterogeneous(
                                platform.speeds().to_vec(),
                                edited,
                                *io_bandwidth,
                            )?,
                        ))
                    }
                }
            }
            InstanceDelta::StageWeight { stage, work } => {
                if stage >= app.n_stages() {
                    return Err(DeltaError::UnknownStage {
                        stage,
                        n_stages: app.n_stages(),
                    });
                }
                let mut works = app.works().to_vec();
                works[stage] = work;
                Ok((
                    Application::new(works, app.deltas().to_vec())?,
                    platform.clone(),
                ))
            }
        }
    }

    /// Short machine-readable name of the delta kind — the `delta=` token
    /// of the wire format.
    pub fn kind(&self) -> &'static str {
        match self {
            InstanceDelta::ProcSpeed { .. } => "proc-speed",
            InstanceDelta::ProcArrival { .. } => "proc-arrival",
            InstanceDelta::ProcDeparture { .. } => "proc-departure",
            InstanceDelta::Bandwidth { .. } => "bandwidth",
            InstanceDelta::LinkBandwidth { .. } => "link-bandwidth",
            InstanceDelta::StageWeight { .. } => "stage-weight",
        }
    }
}

fn check_proc(proc: ProcId, platform: &Platform) -> Result<(), DeltaError> {
    if proc >= platform.n_procs() {
        return Err(DeltaError::UnknownProc {
            proc,
            n_procs: platform.n_procs(),
        });
    }
    Ok(())
}

fn rebuild_platform(speeds: Vec<f64>, links: &LinkModel) -> Result<Platform, DeltaError> {
    match links {
        LinkModel::Homogeneous(b) => Ok(Platform::comm_homogeneous(speeds, *b)?),
        LinkModel::Heterogeneous {
            matrix,
            io_bandwidth,
        } => Ok(Platform::fully_heterogeneous(
            speeds,
            matrix.clone(),
            *io_bandwidth,
        )?),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::approx_eq;

    fn instance() -> (Application, Platform) {
        let app = Application::new(vec![2.0, 4.0, 6.0], vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let pf = Platform::comm_homogeneous(vec![3.0, 9.0, 5.0], 10.0).unwrap();
        (app, pf)
    }

    fn hetero() -> (Application, Platform) {
        let app = Application::new(vec![2.0, 4.0], vec![1.0, 3.0, 5.0]).unwrap();
        let m = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let pf = Platform::fully_heterogeneous(vec![2.0, 4.0], m, 7.0).unwrap();
        (app, pf)
    }

    #[test]
    fn proc_speed_edits_one_speed() {
        let (app, pf) = instance();
        let delta = InstanceDelta::ProcSpeed {
            proc: 2,
            speed: 1.5,
        };
        let (app2, pf2) = delta.apply_to(&app, &pf).unwrap();
        assert_eq!(app2, app);
        assert_eq!(pf2.speeds(), &[3.0, 9.0, 1.5]);
        assert_eq!(pf2.procs_by_speed_desc(), &[1, 0, 2]);
        assert!(approx_eq(pf2.io_bandwidth_of(0), 10.0));
    }

    #[test]
    fn arrival_appends_and_departure_shifts() {
        let (app, pf) = instance();
        let (_, pf2) = InstanceDelta::ProcArrival { speed: 6.0 }
            .apply_to(&app, &pf)
            .unwrap();
        assert_eq!(pf2.speeds(), &[3.0, 9.0, 5.0, 6.0]);
        let (_, pf3) = InstanceDelta::ProcDeparture { proc: 1 }
            .apply_to(&app, &pf2)
            .unwrap();
        assert_eq!(pf3.speeds(), &[3.0, 5.0, 6.0]);
    }

    #[test]
    fn hetero_arrival_grows_the_matrix_with_io_defaults() {
        let (app, pf) = hetero();
        let (_, pf2) = InstanceDelta::ProcArrival { speed: 1.0 }
            .apply_to(&app, &pf)
            .unwrap();
        assert_eq!(pf2.n_procs(), 3);
        assert!(approx_eq(pf2.bandwidth(0, 2), 7.0));
        assert!(approx_eq(pf2.bandwidth(2, 1), 7.0));
        assert!(approx_eq(pf2.bandwidth(0, 1), 2.0));
        let (_, pf3) = InstanceDelta::ProcDeparture { proc: 0 }
            .apply_to(&app, &pf2)
            .unwrap();
        assert_eq!(pf3.n_procs(), 2);
        assert!(approx_eq(pf3.bandwidth(0, 1), 7.0)); // old (1,2) default
    }

    #[test]
    fn bandwidth_kinds_respect_the_link_model() {
        let (app, pf) = instance();
        let (_, pf2) = InstanceDelta::Bandwidth { bandwidth: 4.0 }
            .apply_to(&app, &pf)
            .unwrap();
        assert!(approx_eq(pf2.bandwidth(0, 1), 4.0));
        assert_eq!(
            InstanceDelta::LinkBandwidth {
                from: 0,
                to: 1,
                bandwidth: 2.0
            }
            .apply_to(&app, &pf)
            .unwrap_err(),
            DeltaError::WrongLinkModel {
                expected: "fully heterogeneous"
            }
        );
        let (happ, hpf) = hetero();
        let (_, hpf2) = InstanceDelta::LinkBandwidth {
            from: 1,
            to: 0,
            bandwidth: 9.5,
        }
        .apply_to(&happ, &hpf)
        .unwrap();
        assert!(approx_eq(hpf2.bandwidth(1, 0), 9.5));
        assert!(approx_eq(hpf2.bandwidth(0, 1), 2.0));
        assert_eq!(
            InstanceDelta::Bandwidth { bandwidth: 1.0 }
                .apply_to(&happ, &hpf)
                .unwrap_err(),
            DeltaError::WrongLinkModel {
                expected: "Communication Homogeneous"
            }
        );
    }

    #[test]
    fn stage_weight_edits_one_work() {
        let (app, pf) = instance();
        let (app2, _) = InstanceDelta::StageWeight {
            stage: 1,
            work: 0.5,
        }
        .apply_to(&app, &pf)
        .unwrap();
        assert_eq!(app2.works(), &[2.0, 0.5, 6.0]);
        assert_eq!(app2.deltas(), app.deltas());
        assert!(approx_eq(app2.interval_work(0, 3), 8.5));
    }

    #[test]
    fn bad_indices_and_values_are_structured_errors() {
        let (app, pf) = instance();
        assert_eq!(
            InstanceDelta::ProcSpeed {
                proc: 3,
                speed: 1.0
            }
            .apply_to(&app, &pf)
            .unwrap_err(),
            DeltaError::UnknownProc {
                proc: 3,
                n_procs: 3
            }
        );
        assert_eq!(
            InstanceDelta::StageWeight {
                stage: 3,
                work: 1.0
            }
            .apply_to(&app, &pf)
            .unwrap_err(),
            DeltaError::UnknownStage {
                stage: 3,
                n_stages: 3
            }
        );
        assert!(matches!(
            InstanceDelta::ProcSpeed {
                proc: 0,
                speed: -1.0
            }
            .apply_to(&app, &pf)
            .unwrap_err(),
            DeltaError::Invalid(ModelError::InvalidNumber { .. })
        ));
        assert!(matches!(
            InstanceDelta::StageWeight {
                stage: 0,
                work: f64::NAN
            }
            .apply_to(&app, &pf)
            .unwrap_err(),
            DeltaError::Invalid(ModelError::InvalidNumber { .. })
        ));
        let single = Platform::comm_homogeneous(vec![1.0], 1.0).unwrap();
        assert_eq!(
            InstanceDelta::ProcDeparture { proc: 0 }
                .apply_to(&app, &single)
                .unwrap_err(),
            DeltaError::LastProc
        );
    }

    #[test]
    fn kinds_are_stable_wire_tokens() {
        assert_eq!(
            InstanceDelta::ProcArrival { speed: 1.0 }.kind(),
            "proc-arrival"
        );
        assert_eq!(
            InstanceDelta::StageWeight {
                stage: 0,
                work: 1.0
            }
            .kind(),
            "stage-weight"
        );
    }
}
