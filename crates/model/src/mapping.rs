//! Interval mappings: the allocation functions studied by the paper.

use crate::application::Application;
use crate::platform::{Platform, ProcId};
use crate::{ModelError, Result};

/// A contiguous run of stages `[start, end)` (half-open, 0-based).
///
/// In paper notation `I_j = [d_j, e_j]` with 1-based inclusive bounds;
/// `Interval { start, end }` corresponds to `d = start + 1`,
/// `e = end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// First stage of the interval (inclusive, 0-based).
    pub start: usize,
    /// One past the last stage of the interval.
    pub end: usize,
}

impl Interval {
    /// Builds the interval `[start, end)`. Panics when `start >= end`
    /// (intervals are never empty in a valid mapping).
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "interval [{start}, {end}) is empty");
        Interval { start, end }
    }

    /// Number of stages in the interval.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Intervals are never empty; provided for clippy symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// True when the interval contains stage `k`.
    #[inline]
    pub fn contains(&self, k: usize) -> bool {
        self.start <= k && k < self.end
    }
}

impl std::fmt::Display for Interval {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Display in the paper's 1-based inclusive notation.
        write!(f, "S{}..S{}", self.start + 1, self.end)
    }
}

/// An interval-based mapping: a partition of the `n` stages into `m ≤ p`
/// intervals of consecutive stages, interval `j` being processed by the
/// distinct processor `procs[j]`.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalMapping {
    intervals: Vec<Interval>,
    procs: Vec<ProcId>,
}

impl IntervalMapping {
    /// Builds and validates a mapping against an application and platform.
    ///
    /// # Errors
    ///
    /// * [`ModelError::NotAPartition`] when the intervals do not partition
    ///   `[0, n)` from left to right;
    /// * [`ModelError::BadAllocation`] when `procs` has the wrong length,
    ///   references an unknown processor, or reuses a processor (the paper
    ///   maps each interval on a *distinct* processor: stages keep internal
    ///   state, so two intervals cannot share one processor without
    ///   breaking the cyclic one-port schedule assumed by eq. 1).
    pub fn new(
        app: &Application,
        platform: &Platform,
        intervals: Vec<Interval>,
        procs: Vec<ProcId>,
    ) -> Result<Self> {
        if intervals.is_empty() {
            return Err(ModelError::NotAPartition {
                detail: "no interval".into(),
            });
        }
        if intervals[0].start != 0 {
            return Err(ModelError::NotAPartition {
                detail: format!("first interval starts at stage {}", intervals[0].start),
            });
        }
        for w in intervals.windows(2) {
            if w[0].end != w[1].start {
                return Err(ModelError::NotAPartition {
                    detail: format!("gap or overlap between {} and {}", w[0], w[1]),
                });
            }
        }
        let last_end = intervals.last().expect("non-empty").end;
        if last_end != app.n_stages() {
            return Err(ModelError::NotAPartition {
                detail: format!(
                    "last interval ends at stage {last_end}, application has {} stages",
                    app.n_stages()
                ),
            });
        }
        if procs.len() != intervals.len() {
            return Err(ModelError::BadAllocation {
                detail: format!(
                    "{} intervals but {} processor assignments",
                    intervals.len(),
                    procs.len()
                ),
            });
        }
        if intervals.len() > platform.n_procs() {
            return Err(ModelError::BadAllocation {
                detail: format!(
                    "{} intervals exceed the {} available processors",
                    intervals.len(),
                    platform.n_procs()
                ),
            });
        }
        let mut seen = vec![false; platform.n_procs()];
        for &u in &procs {
            if u >= platform.n_procs() {
                return Err(ModelError::BadAllocation {
                    detail: format!("processor P{u} does not exist"),
                });
            }
            if seen[u] {
                return Err(ModelError::BadAllocation {
                    detail: format!("processor P{u} is assigned twice"),
                });
            }
            seen[u] = true;
        }
        Ok(IntervalMapping { intervals, procs })
    }

    /// Reassembles a mapping from parts that were *recorded from an
    /// already-validated mapping* (the arena-backed trajectory store of
    /// `pipeline-core` snapshots valid states and materializes them back
    /// on demand). Skips the application/platform validation of
    /// [`Self::new`] — the caller vouches that `intervals` is a
    /// left-to-right partition of the stages and `procs` assigns distinct
    /// existing processors. Debug builds still check the partition shape.
    pub fn from_validated_parts(intervals: Vec<Interval>, procs: Vec<ProcId>) -> Self {
        debug_assert!(!intervals.is_empty() && intervals[0].start == 0);
        debug_assert!(intervals.windows(2).all(|w| w[0].end == w[1].start));
        debug_assert_eq!(intervals.len(), procs.len());
        debug_assert!(
            (1..procs.len()).all(|j| !procs[..j].contains(&procs[j])),
            "processor assigned twice"
        );
        IntervalMapping { intervals, procs }
    }

    /// The latency-optimal mapping of Lemma 1: every stage on the fastest
    /// processor.
    pub fn all_on_fastest(app: &Application, platform: &Platform) -> Self {
        IntervalMapping {
            intervals: vec![Interval::new(0, app.n_stages())],
            procs: vec![platform.fastest()],
        }
    }

    /// A one-to-one mapping (requires `n ≤ p`): stage `k` on `procs[k]`.
    pub fn one_to_one(app: &Application, platform: &Platform, procs: Vec<ProcId>) -> Result<Self> {
        let intervals = (0..app.n_stages())
            .map(|k| Interval::new(k, k + 1))
            .collect();
        IntervalMapping::new(app, platform, intervals, procs)
    }

    /// Number of intervals `m`.
    #[inline]
    pub fn n_intervals(&self) -> usize {
        self.intervals.len()
    }

    /// The intervals, left to right.
    #[inline]
    pub fn intervals(&self) -> &[Interval] {
        &self.intervals
    }

    /// Processor of interval `j`.
    #[inline]
    pub fn proc_of(&self, j: usize) -> ProcId {
        self.procs[j]
    }

    /// The processor assignment, parallel to [`Self::intervals`].
    #[inline]
    pub fn procs(&self) -> &[ProcId] {
        &self.procs
    }

    /// Iterator over `(interval, processor)` pairs.
    pub fn assignments(&self) -> impl Iterator<Item = (Interval, ProcId)> + '_ {
        self.intervals
            .iter()
            .copied()
            .zip(self.procs.iter().copied())
    }

    /// Index of the interval containing stage `k`, by binary search.
    pub fn interval_of_stage(&self, k: usize) -> Option<usize> {
        let j = self.intervals.partition_point(|iv| iv.end <= k);
        (j < self.intervals.len() && self.intervals[j].contains(k)).then_some(j)
    }

    /// True when every interval is a single stage.
    pub fn is_one_to_one(&self) -> bool {
        self.intervals.iter().all(|iv| iv.len() == 1)
    }
}

impl std::fmt::Display for IntervalMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (j, (iv, u)) in self.assignments().enumerate() {
            if j > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{iv}→P{u}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Application, Platform) {
        let app = Application::uniform(5, 2.0, 1.0).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 5.0, 3.0], 10.0).unwrap();
        (app, pf)
    }

    #[test]
    fn valid_mapping_roundtrip() {
        let (app, pf) = setup();
        let m = IntervalMapping::new(
            &app,
            &pf,
            vec![Interval::new(0, 2), Interval::new(2, 5)],
            vec![1, 2],
        )
        .unwrap();
        assert_eq!(m.n_intervals(), 2);
        assert_eq!(m.proc_of(0), 1);
        assert_eq!(m.interval_of_stage(0), Some(0));
        assert_eq!(m.interval_of_stage(2), Some(1));
        assert_eq!(m.interval_of_stage(4), Some(1));
        assert_eq!(m.interval_of_stage(5), None);
        assert!(!m.is_one_to_one());
    }

    #[test]
    fn all_on_fastest_uses_lemma_1_processor() {
        let (app, pf) = setup();
        let m = IntervalMapping::all_on_fastest(&app, &pf);
        assert_eq!(m.n_intervals(), 1);
        assert_eq!(m.proc_of(0), 1); // speed 5 is the fastest
        assert_eq!(m.intervals()[0], Interval::new(0, 5));
    }

    #[test]
    fn one_to_one_mapping() {
        let app = Application::uniform(3, 1.0, 1.0).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0, 3.0], 10.0).unwrap();
        let m = IntervalMapping::one_to_one(&app, &pf, vec![2, 0, 1]).unwrap();
        assert!(m.is_one_to_one());
        assert_eq!(m.procs(), &[2, 0, 1]);
    }

    #[test]
    fn rejects_gap_overlap_and_bounds() {
        let (app, pf) = setup();
        // Gap between intervals.
        assert!(matches!(
            IntervalMapping::new(
                &app,
                &pf,
                vec![Interval::new(0, 2), Interval::new(3, 5)],
                vec![0, 1],
            ),
            Err(ModelError::NotAPartition { .. })
        ));
        // Does not start at stage 0.
        assert!(matches!(
            IntervalMapping::new(&app, &pf, vec![Interval::new(1, 5)], vec![0]),
            Err(ModelError::NotAPartition { .. })
        ));
        // Does not end at stage n.
        assert!(matches!(
            IntervalMapping::new(&app, &pf, vec![Interval::new(0, 4)], vec![0]),
            Err(ModelError::NotAPartition { .. })
        ));
        // Empty interval list.
        assert!(matches!(
            IntervalMapping::new(&app, &pf, vec![], vec![]),
            Err(ModelError::NotAPartition { .. })
        ));
    }

    #[test]
    fn rejects_bad_allocations() {
        let (app, pf) = setup();
        let ivs = vec![Interval::new(0, 2), Interval::new(2, 5)];
        // Length mismatch.
        assert!(matches!(
            IntervalMapping::new(&app, &pf, ivs.clone(), vec![0]),
            Err(ModelError::BadAllocation { .. })
        ));
        // Unknown processor.
        assert!(matches!(
            IntervalMapping::new(&app, &pf, ivs.clone(), vec![0, 7]),
            Err(ModelError::BadAllocation { .. })
        ));
        // Duplicated processor.
        assert!(matches!(
            IntervalMapping::new(&app, &pf, ivs, vec![2, 2]),
            Err(ModelError::BadAllocation { .. })
        ));
    }

    #[test]
    fn rejects_more_intervals_than_processors() {
        let app = Application::uniform(4, 1.0, 1.0).unwrap();
        let pf = Platform::comm_homogeneous(vec![1.0, 2.0, 3.0], 10.0).unwrap();
        let ivs = (0..4).map(|k| Interval::new(k, k + 1)).collect();
        assert!(matches!(
            IntervalMapping::new(&app, &pf, ivs, vec![0, 1, 2, 0]),
            Err(ModelError::BadAllocation { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_interval_panics() {
        let _ = Interval::new(3, 3);
    }

    #[test]
    fn display_uses_paper_notation() {
        let (app, pf) = setup();
        let m = IntervalMapping::new(
            &app,
            &pf,
            vec![Interval::new(0, 2), Interval::new(2, 5)],
            vec![1, 2],
        )
        .unwrap();
        assert_eq!(m.to_string(), "S1..S2→P1 | S3..S5→P2");
    }
}
