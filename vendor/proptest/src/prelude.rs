//! The glob-import surface: `use proptest::prelude::*;`.

pub use crate::collection::SizeRange;
pub use crate::strategy::{Just, Strategy};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
