//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The workspace builds in hermetic environments without access to a
//! crates.io mirror, so the slice of proptest the test-suite uses is
//! vendored here:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]`, doc
//!   comments and multiple `#[test]` functions per block);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_filter`
//!   and `prop_filter_map`;
//! * range strategies over primitives, tuple strategies up to arity 6,
//!   [`collection::vec`] and [`strategy::Just`];
//! * [`test_runner::Config`] (`ProptestConfig`) with `with_cases`.
//!
//! Differences from upstream: generation is a fixed deterministic
//! stream (SplitMix64 keyed by test-case index), and failing inputs are
//! reported but **not shrunk**. Rejected samples (`prop_assume!`,
//! `prop_filter*`) are retried with fresh draws, with a global retry
//! budget per test.

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

/// Defines property tests. Mirrors `proptest::proptest!`.
///
/// ```
/// proptest::proptest! {
///     #![proptest_config(proptest::test_runner::Config::with_cases(8))]
///     // In real code add `#[test]`; omitted here so the doctest can
///     // invoke the property directly.
///     fn addition_commutes(a in 0u32..1000, b in 0u32..1000) {
///         proptest::prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $cfg;
                let mut __case: u32 = 0;
                let mut __attempt: u64 = 0;
                let __max_attempts: u64 = (__config.cases as u64) * 32 + 4096;
                while __case < __config.cases {
                    __attempt += 1;
                    if __attempt > __max_attempts {
                        panic!(
                            "proptest '{}': too many rejected samples ({} accepted of {} wanted)",
                            stringify!($name), __case, __config.cases
                        );
                    }
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name), __attempt,
                    );
                    $(
                        let $pat = match $crate::strategy::Strategy::sample(
                            &($strat), &mut __rng,
                        ) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => continue,
                        };
                    )+
                    let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::core::result::Result::Ok(()) })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => { __case += 1; }
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_)
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg)
                        ) => {
                            panic!(
                                "proptest '{}' failed at case {} (attempt {}): {}",
                                stringify!($name), __case, __attempt, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(
                    concat!("assertion failed: ", stringify!($cond)).to_string(),
                ),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fails the current test case unless both sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                    stringify!($left), stringify!($right), l, r
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!(
                    "{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)*), l, r
                )),
            );
        }
    }};
}

/// Rejects (skips) the current test case unless the assumption holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
