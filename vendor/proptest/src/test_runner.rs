//! Test-case driver types.

/// Per-test configuration. Mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of accepted test cases to run.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Why a test-case body did not complete normally.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed an assertion; the whole test panics.
    Fail(String),
    /// The case was rejected (`prop_assume!`); it is retried.
    Reject(String),
}

/// Deterministic SplitMix64 stream used to sample strategies.
///
/// Seeded from the test name and the attempt counter, so every test
/// sees a fixed, reproducible sequence of inputs independent of other
/// tests and of execution order.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The generator for one test-case attempt.
    pub fn for_case(test_name: &str, attempt: u64) -> Self {
        // FNV-1a over the name, mixed with the attempt index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ attempt.wrapping_mul(0xA24B_AED4_963E_E407),
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let u01 = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + u01 * (hi - lo)
    }

    /// Uniform `u128` below `span` (which must be non-zero).
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        (self.next_u64() as u128) % span
    }
}
