//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;

/// How many fresh draws a filtering combinator makes before giving up
/// and rejecting the whole test case (the runner then retries the case
/// with a new stream).
const LOCAL_RETRIES: usize = 64;

/// A generator of values of an associated type. Mirrors
/// `proptest::strategy::Strategy`, minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value; `None` means the draw was rejected (filtered).
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f`; the reason is reported when
    /// the filter starves the generator.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason,
            f,
        }
    }

    /// Simultaneously maps and filters: `f` returning `None` rejects
    /// the draw.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        self.inner.sample(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.sample(rng) {
                if (self.f)(&v) {
                    return Some(v);
                }
            }
        }
        eprintln!(
            "proptest filter starved ({} draws): {}",
            LOCAL_RETRIES, self.reason
        );
        None
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> Option<O>> Strategy for FilterMap<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> Option<O> {
        for _ in 0..LOCAL_RETRIES {
            if let Some(v) = self.inner.sample(rng) {
                if let Some(out) = (self.f)(v) {
                    return Some(out);
                }
            }
        }
        eprintln!(
            "proptest filter starved ({} draws): {}",
            LOCAL_RETRIES, self.reason
        );
        None
    }
}

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> Option<f64> {
        assert!(self.start < self.end, "empty f64 strategy range");
        Some(rng.f64_in(self.start, self.end))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                assert!(self.start < self.end, "empty integer strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                Some((self.start as i128 + rng.below(span) as i128) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                Some((lo as i128 + rng.below(span) as i128) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.sample(rng)?,)+))
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
