//! Collection strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length specification for [`vec`]: either a fixed size or a
/// half-open range of sizes.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`. Mirrors `proptest::collection::vec`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let span = (self.size.hi - self.size.lo) as u128;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}
