//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The workspace builds in hermetic environments without access to a
//! crates.io mirror, so the slice of criterion the bench suite uses is
//! vendored here: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement is deliberately simple — warm-up then a fixed wall-clock
//! window, reporting the median of per-iteration means across samples.
//! There is no statistical regression analysis, HTML report or plotting;
//! the numbers are honest medians good enough for before/after
//! comparisons on one machine.

use std::time::{Duration, Instant};

/// Top-level harness state: measurement settings plus a result sink.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Upstream parses CLI flags here; the stub accepts and ignores
    /// them so `cargo bench -- <filter>` does not error.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        run_benchmark(&id.0, self.warm_up, self.measurement, self.sample_size, f);
        self
    }

    /// Runs a single benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let (w, m, s) = (self.warm_up, self.measurement, self.sample_size);
        run_benchmark(&id.0, w, m, s, |b| f(b, input));
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput of subsequent benchmarks.
    /// The stub records nothing; kept for API compatibility.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count within this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Overrides the measurement window within this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Overrides the warm-up time within this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.warm_up, self.measurement, self.sample_size, f);
        self
    }

    /// Runs one benchmark in the group, parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into_benchmark_id();
        let full = format!("{}/{}", self.name, id.0);
        let (w, m, s) = (self.warm_up, self.measurement, self.sample_size);
        run_benchmark(&full, w, m, s, |b| f(b, input));
        self
    }

    /// Ends the group. (Upstream emits summary reports here.)
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    /// Just the parameter, for single-function groups.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Conversion accepted by `bench_function`-style entry points.
pub trait IntoBenchmarkId {
    /// The normalized identifier.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Units of work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes, reported in decimal multiples.
    BytesDecimal(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    mut f: F,
) {
    // Warm-up: grow the iteration count until the warm-up window is
    // spent; this also calibrates iters-per-sample.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < warm_up {
        f(&mut bencher);
        per_iter = bencher.elapsed.max(Duration::from_nanos(1)) / bencher.iters as u32;
        bencher.iters = (bencher.iters * 2).min(1 << 30);
    }

    // Fit `sample_size` samples into the measurement window.
    let budget = measurement.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        bencher.iters = iters;
        f(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    println!(
        "{name:<56} time: [{}/iter, median of {sample_size} samples]",
        fmt_ns(median)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Defines a benchmark group function. Supports both the positional
/// form `criterion_group!(benches, f, g)` and the configured form
/// `criterion_group! { name = benches; config = ...; targets = f, g }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config.configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Defines `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
