//! Offline, API-compatible subset of the `rand` crate (0.9-style API).
//!
//! The workspace builds in hermetic environments without access to a
//! crates.io mirror, so the handful of `rand` items the codebase uses —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::random_range`] — are vendored here on top of a SplitMix64
//! generator. Determinism per seed is all the callers rely on (instance
//! generators and benchmark inputs); the streams differ from upstream
//! `rand`, which is fine because no golden data is keyed to upstream
//! streams.

pub mod distr;
pub mod rngs;

pub use distr::SampleRange;

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing random-value methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    ///
    /// Supports `Range` and `RangeInclusive` over the primitive integer
    /// types and `f64`, like `rand 0.9`'s `random_range`.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}
