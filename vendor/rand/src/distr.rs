//! Uniform range sampling.

use crate::RngCore;

/// A range that can produce uniformly distributed values of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let u01 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u01 * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
