//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic generator: SplitMix64 (Steele, Lea & Flood 2014).
///
/// Passes BigCrush on 64-bit outputs and is more than adequate for test
/// data and benchmark inputs. Unrelated to upstream `StdRng`'s ChaCha12
/// stream — only per-seed determinism is promised.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f: f64 = rng.random_range(0.5..100.0);
            assert!((0.5..100.0).contains(&f));
            let i: i32 = rng.random_range(1..=20);
            assert!((1..=20).contains(&i));
            let u: usize = rng.random_range(0..3);
            assert!(u < 3);
        }
    }
}
