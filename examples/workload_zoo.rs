//! Tour of the workload presets: how pipeline *shape* (not just size)
//! drives the latency/period trade-off and which heuristic wins where.
//!
//! ```text
//! cargo run --release --example workload_zoo
//! ```

use pipeline_workflows::core::bounds::{gap, period_lower_bound};
use pipeline_workflows::core::refine::refine_mapping;
use pipeline_workflows::core::service::{PreparedInstance, SolveRequest};
use pipeline_workflows::core::{HeuristicKind, Objective, Strategy};
use pipeline_workflows::model::workload::WorkloadShape;
use pipeline_workflows::model::{CostModel, Platform};

fn main() {
    // A mid-size heterogeneous cluster.
    let platform =
        Platform::comm_homogeneous(vec![18.0, 15.0, 11.0, 9.0, 7.0, 5.0, 4.0, 2.0], 10.0)
            .expect("valid platform");

    println!(
        "{:<16} {:>9} {:>9} {:>9} {:>8} {:>7} {:>14}",
        "workload", "P_single", "P_best", "refined", "gap", "procs", "best heuristic"
    );
    for shape in WorkloadShape::ALL {
        let app = shape.build(12, 15.0, 6.0);
        let prepared = PreparedInstance::new(app, platform.clone());
        let cm = prepared.cost_model();
        let p_single = prepared.single_proc_period();

        // Best achievable period across all heuristics.
        let report = prepared
            .solve(&SolveRequest::new(Objective::MinPeriod).strategy(Strategy::BestOfAll))
            .expect("min period always solvable");

        // Local-search refinement with a 1.3× latency allowance.
        let refined = refine_mapping(&cm, &report.result.mapping, report.result.latency * 1.3);

        // Certified optimality gap.
        let lb = period_lower_bound(&cm, 5_000_000);
        println!(
            "{:<16} {:>9.2} {:>9.2} {:>9.2} {:>7.1}% {:>7} {:>14}",
            shape.name(),
            p_single,
            report.result.period,
            refined.period,
            100.0 * gap(refined.period, lb.value),
            refined.mapping.n_intervals(),
            report.solver.label()
        );
    }

    // The hotspot shape is where the deal-skeleton extension shines:
    // splitting cannot break the dominant stage.
    println!("\nhotspot + deal skeleton:");
    let app = WorkloadShape::Hotspot.build(9, 12.0, 2.0);
    let cm = CostModel::new(&app, &platform);
    let floor = pipeline_workflows::core::sp_mono_p(&cm, 0.0);
    println!(
        "  splitting floor: {:.2} ({} intervals)",
        floor.period,
        floor.mapping.n_intervals()
    );
    let rep =
        pipeline_workflows::core::replication::replicate_bottlenecks(&cm, &floor.mapping, 0.0);
    println!(
        "  + replication:   {:.2} ({} processors), latency ×{:.2}",
        rep.period,
        rep.mapping.n_procs_used(),
        rep.latency / floor.latency
    );

    // Which heuristic is most sensitive to shape? Compare period floors.
    println!("\nper-heuristic period floors by shape:");
    print!("{:<16}", "workload");
    for kind in HeuristicKind::ALL
        .into_iter()
        .filter(|k| k.is_period_fixed())
    {
        print!("{:>16}", kind.label());
    }
    println!();
    for shape in WorkloadShape::ALL {
        let app = shape.build(12, 15.0, 6.0);
        let cm = CostModel::new(&app, &platform);
        print!("{:<16}", shape.name());
        for kind in HeuristicKind::ALL
            .into_iter()
            .filter(|k| k.is_period_fixed())
        {
            let floor = kind.run(&cm, 0.0);
            print!("{:>16.2}", floor.period);
        }
        println!();
    }
}
