//! A realistic scenario: an image-analysis pipeline on a heterogeneous
//! lab cluster.
//!
//! The workload mirrors the algorithmic-skeleton applications the paper's
//! introduction motivates: frames stream through decode → denoise →
//! segment → feature extraction → classification → encode. Computation
//! dominates in the middle stages (like experiment E3), communication at
//! the edges. We explore the latency/period trade-off with every
//! heuristic, validate the chosen mapping in the discrete-event
//! simulator, and compare with the exact Pareto front.
//!
//! ```text
//! cargo run --release --example image_pipeline
//! ```

use pipeline_workflows::core::{exact, HeuristicKind};
use pipeline_workflows::model::{Application, CostModel, Platform};
use pipeline_workflows::sim::{InputPolicy, PipelineSim, SimConfig};

fn main() {
    // Volumes in MB, work in Mflop — one 4K frame through six stages.
    // decode: cheap but chatty; segmentation and features: heavy.
    let app = Application::new(
        vec![
            180.0,  // decode
            420.0,  // denoise
            1650.0, // segmentation
            980.0,  // feature extraction
            310.0,  // classification
            140.0,  // encode
        ],
        vec![
            24.0, // compressed frame in
            33.0, // raw frame
            33.0, // denoised frame
            9.0,  // segment masks
            2.5,  // feature vectors
            0.4,  // labels
            6.0,  // annotated output
        ],
    )
    .expect("valid application");

    // The lab cluster: two fast servers, four mid desktops, two old nodes,
    // all on the same gigabit switch (b = 125 MB/s scaled to 12.5).
    let platform =
        Platform::comm_homogeneous(vec![95.0, 88.0, 40.0, 38.0, 35.0, 33.0, 12.0, 10.0], 12.5)
            .expect("valid platform");

    let cm = CostModel::new(&app, &platform);
    let l_opt = cm.optimal_latency();
    let p_single = cm.single_proc_period();
    println!(
        "image pipeline: {} stages, {:.0} Mflop/frame",
        app.n_stages(),
        app.total_work()
    );
    println!(
        "single-server: latency {l_opt:.2}s, period {p_single:.2}s ({:.2} fps)",
        1.0 / p_single
    );

    // Requirement: 1 frame every 25 s (vs ~39 s on one server), with the
    // smallest possible latency.
    let target_period = 25.0;
    println!("\ntarget period {target_period}s — what does each heuristic offer?");
    println!(
        "{:<16} {:>8} {:>9} {:>9} {:>6}",
        "heuristic", "feasible", "period", "latency", "procs"
    );
    let mut best: Option<(f64, HeuristicKind)> = None;
    for kind in HeuristicKind::ALL
        .into_iter()
        .filter(|k| k.is_period_fixed())
    {
        let res = kind.run(&cm, target_period);
        println!(
            "{:<16} {:>8} {:>9.2} {:>9.2} {:>6}",
            kind.label(),
            res.feasible,
            res.period,
            res.latency,
            res.mapping.n_intervals()
        );
        if res.feasible && best.as_ref().is_none_or(|(l, _)| res.latency < *l) {
            best = Some((res.latency, kind));
        }
    }
    let (_, winner) = best.expect("some heuristic meets 25s on this cluster");
    let chosen = winner.run(&cm, target_period);
    println!(
        "\nchosen: {} → {} (period {:.2}s, latency {:.2}s)",
        winner.label(),
        chosen.mapping,
        chosen.period,
        chosen.latency
    );

    // How far from optimal? n = 6 is small enough for the exact solver.
    let exact_lat = exact::exact_min_latency_for_period(&cm, target_period)
        .expect("target feasible for the exact solver");
    println!(
        "exact optimum at this period: latency {:.2}s — heuristic overhead {:.1}%",
        exact_lat.0,
        100.0 * (chosen.latency - exact_lat.0) / exact_lat.0
    );

    // Validate operationally: stream 100 frames at the mapped period.
    let sim = PipelineSim::new(
        &cm,
        &chosen.mapping,
        SimConfig {
            input: InputPolicy::Periodic(chosen.period),
            record_trace: false,
        },
    );
    let out = sim.run(100);
    println!(
        "\nsimulated 100 frames: steady period {:.2}s (analytic {:.2}s), max latency {:.2}s (analytic {:.2}s)",
        out.report.steady_period().unwrap(),
        chosen.period,
        out.report.max_latency(),
        chosen.latency
    );

    // The whole exact trade-off curve, for the write-up.
    println!("\nexact Pareto front (period, latency):");
    for (period, latency, mapping) in exact::exact_pareto_front(&cm).iter() {
        println!("  {period:>8.2}s {latency:>8.2}s  {mapping}");
    }
}
