//! Theorem 1, live: reduce a NUMERICAL MATCHING WITH TARGET SUMS
//! instance to Hetero-1D-Partition, solve the gadget exactly, and decode
//! the matching back — both for a solvable and an unsolvable instance.
//!
//! ```text
//! cargo run --release --example complexity_demo
//! ```

use pipeline_workflows::chains::hetero_exact_bnb;
use pipeline_workflows::chains::nmwts::{
    decode_matching, reduce, solve_nmwts_brute, NmwtsInstance,
};

fn demo(label: &str, inst: NmwtsInstance) {
    println!("== {label} ==");
    println!("   x = {:?}, y = {:?}, z = {:?}", inst.xs, inst.ys, inst.zs);
    println!("   Σx + Σy = Σz? {}", inst.sums_balanced());

    let red = reduce(&inst);
    println!(
        "   gadget: {} tasks, {} processor speeds (M = {}, B = 2M, C = 5M, D = 7M)",
        red.tasks.len(),
        red.speeds.len(),
        red.m_value
    );
    println!(
        "   tasks  = {:?}",
        red.tasks.iter().map(|t| *t as u64).collect::<Vec<_>>()
    );
    println!(
        "   speeds = {:?}",
        red.speeds.iter().map(|s| *s as u64).collect::<Vec<_>>()
    );

    let sol = hetero_exact_bnb(&red.tasks, &red.speeds, 500_000_000)
        .expect("gadget solved within the node budget");
    println!(
        "   exact weighted bottleneck: {:.6} (K = 1 test)",
        sol.objective
    );

    if sol.objective <= 1.0 + 1e-9 {
        let (s1, s2) = decode_matching(&red, &sol).expect("K = 1 partitions decode");
        println!("   decoded matching: σ1 = {s1:?}, σ2 = {s2:?}");
        println!(
            "   verifies x_i + y_σ1(i) = z_σ2(i)? {}",
            inst.check(&s1, &s2)
        );
    } else {
        println!("   bound 1 unreachable → NMWTS instance unsolvable (as expected).");
    }
    // Cross-check with the direct brute-force solver.
    println!(
        "   brute-force NMWTS solver agrees: {}",
        solve_nmwts_brute(&inst).is_some() == (sol.objective <= 1.0 + 1e-9)
    );
    println!();
}

fn main() {
    println!(
        "Theorem 1 (paper §3): NMWTS reduces to Hetero-1D-Partition.\n\
         The gadget interleaves tasks [A_i, 1×M, C, D] with speeds\n\
         B+z_i, C+M−y_i and D — bound K = 1 is achievable iff the NMWTS\n\
         instance has a solution.\n"
    );
    demo(
        "solvable instance",
        NmwtsInstance::new(vec![1, 2], vec![2, 1], vec![3, 3]),
    );
    demo(
        "unsolvable instance (balanced sums, no matching)",
        NmwtsInstance::new(vec![1, 3], vec![1, 3], vec![3, 5]),
    );
}
