//! Tour of the scenario zoo: every registered instance family swept
//! through the sharded engine, with its landmarks and winning heuristic.
//!
//! ```text
//! cargo run --release --example scenario_zoo
//! ```

use pipeline_workflows::experiments::{run_scenario, scenario_zoo};
use pipeline_workflows::model::scenario::ScenarioFamily;

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "scenario zoo — {} registered families, {threads} thread(s)\n",
        ScenarioFamily::ALL.len()
    );
    println!(
        "{:<14} {:<46} {:>9} {:>9} {:>9} {:>7}",
        "family", "stresses", "P_single", "floor", "gain", "curves"
    );
    for spec in scenario_zoo() {
        let params = spec.params();
        let fam = run_scenario(&params, 2007, 10, 10, threads);
        let gain = fam.stats.mean_p_init / fam.stats.mean_best_floor;
        println!(
            "{:<14} {:<46} {:>9.2} {:>9.2} {:>8.2}x {:>7}",
            spec.family.label(),
            spec.family.stresses(),
            fam.stats.mean_p_init,
            fam.stats.mean_best_floor,
            gain,
            fam.series.len(),
        );
    }
    println!(
        "\n'gain' is the mean single-processor period over the mean best \
         period floor\nreached by the applicable splitting heuristics — how \
         much throughput the\npipeline mapping buys on each workload class."
    );
}
