//! Watch a mapping execute: discrete-event simulation with an ASCII Gantt
//! chart, comparing the analytic cost model against observed behaviour
//! under different input regimes.
//!
//! ```text
//! cargo run --example simulate_mapping
//! ```

use pipeline_workflows::core::sp_mono_p;
use pipeline_workflows::model::{Application, CostModel, Platform};
use pipeline_workflows::sim::{Gantt, InputPolicy, PipelineSim, SimConfig};

fn main() {
    let app = Application::new(vec![12.0, 30.0, 8.0, 22.0], vec![6.0, 4.0, 10.0, 3.0, 6.0])
        .expect("valid application");
    let platform =
        Platform::comm_homogeneous(vec![10.0, 6.0, 4.0, 3.0], 5.0).expect("valid platform");
    let cm = CostModel::new(&app, &platform);

    // Schedule for twice the throughput of the single-processor mapping.
    let res = sp_mono_p(&cm, 0.5 * cm.single_proc_period());
    println!("mapping: {}", res.mapping);
    println!(
        "analytic: period {:.3}, latency {:.3}\n",
        res.period, res.latency
    );

    // Regime 1 — a single data set (unloaded latency).
    let single = PipelineSim::new(
        &cm,
        &res.mapping,
        SimConfig {
            input: InputPolicy::Saturating,
            record_trace: true,
        },
    )
    .run(1);
    println!(
        "one data set: simulated latency {:.3} (analytic {:.3})",
        single.report.latency(0),
        res.latency
    );

    // Regime 2 — saturating input: throughput converges to the period.
    let sat = PipelineSim::new(
        &cm,
        &res.mapping,
        SimConfig {
            input: InputPolicy::Saturating,
            record_trace: true,
        },
    )
    .run(30);
    println!(
        "saturating input, 30 data sets: steady period {:.3} (analytic {:.3}), max latency {:.3}",
        sat.report.steady_period().unwrap(),
        res.period,
        sat.report.max_latency()
    );

    // Regime 3 — input throttled to the period: every data set gets the
    // analytic latency.
    let throttled = PipelineSim::new(
        &cm,
        &res.mapping,
        SimConfig {
            input: InputPolicy::Periodic(res.period),
            record_trace: false,
        },
    )
    .run(30);
    println!(
        "throttled input, 30 data sets: max latency {:.3} (analytic {:.3})",
        throttled.report.max_latency(),
        res.latency
    );

    // Gantt chart of the saturating run's first few cycles: each row is a
    // processor; `r` receive, `#` compute, `s` send, `.` idle. Watch the
    // bottleneck processor stay solid while others breathe.
    let horizon = sat.report.completion[8.min(sat.report.n_datasets() - 1)];
    let procs: Vec<usize> = res.mapping.procs().to_vec();
    let visible: Vec<_> = sat
        .trace
        .iter()
        .copied()
        .filter(|e| e.start < horizon)
        .collect();
    println!("\nGantt (saturating, first ~9 data sets):");
    print!("{}", Gantt { width: 96 }.render(&visible, &procs, horizon));

    // Utilization: the bottleneck processor should be near 100% busy.
    println!("\nutilization under saturation:");
    for &u in &procs {
        println!(
            "  P{u}: {:>5.1}%  (speed {})",
            100.0 * sat.report.utilization(u),
            platform.speed(u)
        );
    }
}
