//! Explore the latency/period trade-off on one random paper instance:
//! sweep every heuristic across targets and plot the resulting fronts
//! against the exact Pareto front.
//!
//! ```text
//! cargo run --release --example pareto_explorer [seed]
//! ```

use pipeline_workflows::core::{exact, HeuristicKind, ParetoFront};
use pipeline_workflows::experiments::ascii::Chart;
use pipeline_workflows::model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};
use pipeline_workflows::model::util::linspace;
use pipeline_workflows::model::CostModel;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    // Small enough for the exponential exact solver, interesting enough
    // to show spread: n = 8 stages, p = 6 processors, E2 workload.
    let params = InstanceParams::paper(ExperimentKind::E2, 8, 6);
    let (app, platform) = InstanceGenerator::new(params).instance(seed, 0);
    let cm = CostModel::new(&app, &platform);

    println!(
        "instance (seed {seed}): works {:?}",
        app.works()
            .iter()
            .map(|w| (w * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!("          speeds {:?}", platform.speeds());
    let p_single = cm.single_proc_period();
    let l_opt = cm.optimal_latency();
    println!("landmarks: P_single {p_single:.2}, L_opt {l_opt:.2}\n");

    // Per-heuristic fronts over a target sweep.
    let period_grid = linspace(0.3 * p_single, 1.05 * p_single, 40);
    let latency_grid = linspace(l_opt, 3.0 * l_opt, 40);
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for kind in HeuristicKind::ALL {
        let mut front: ParetoFront<()> = ParetoFront::new();
        let grid = if kind.is_period_fixed() {
            &period_grid
        } else {
            &latency_grid
        };
        for &target in grid {
            let r = kind.run(&cm, target);
            if r.feasible {
                front.offer(r.period, r.latency, ());
            }
        }
        let pts: Vec<(f64, f64)> = front.iter().map(|(p, l, ())| (p, l)).collect();
        println!("{:<16} {:>2} non-dominated points", kind.label(), pts.len());
        series.push((kind.label().to_string(), pts));
    }

    // The exact front (exponential enumeration — fine at n = 8, p = 6).
    let exact_front = exact::exact_pareto_front(&cm);
    let exact_pts: Vec<(f64, f64)> = exact_front.iter().map(|(p, l, _)| (p, l)).collect();
    println!(
        "exact            {:>2} non-dominated points",
        exact_pts.len()
    );

    // How close do the heuristics get? Measure worst-case latency excess
    // at matched periods.
    println!("\nheuristic front vs exact front (latency excess at matched period):");
    for (label, pts) in &series {
        let mut worst: f64 = 0.0;
        let mut sum = 0.0;
        let mut count = 0;
        for &(p, l) in pts {
            if let Some(l_star) = exact_front.min_latency_for_period(p + 1e-9) {
                worst = worst.max((l - l_star) / l_star);
                sum += (l - l_star) / l_star;
                count += 1;
            }
        }
        if count > 0 {
            println!(
                "  {:<16} mean +{:.1}%, worst +{:.1}%",
                label,
                100.0 * sum / count as f64,
                100.0 * worst
            );
        }
    }

    let mut plot_series = series;
    plot_series.push(("exact front".to_string(), exact_pts));
    // Markers 1..6 for the heuristics; the exact front reuses marker '1'
    // slot 7 → chart cycles markers, acceptable for a demo.
    println!(
        "\n{}",
        Chart {
            width: 90,
            height: 28,
            ..Chart::default()
        }
        .render(&plot_series)
    );
}
