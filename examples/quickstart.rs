//! Quickstart: map a small pipeline, inspect both metrics, try every
//! heuristic.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use pipeline_workflows::core::{HeuristicKind, SpBiPOptions};
use pipeline_workflows::model::{Application, CostModel, Platform};

fn main() {
    // A 6-stage pipeline. Stage k performs w_k operations, reading
    // δ_{k-1} and writing δ_k data units.
    let app = Application::new(
        vec![14.0, 6.0, 25.0, 9.0, 18.0, 7.0],
        vec![5.0, 3.0, 8.0, 2.0, 6.0, 4.0, 5.0],
    )
    .expect("valid application");

    // A small lab cluster: eight workstations of different speeds behind
    // one switch (Communication Homogeneous, b = 10).
    let platform =
        Platform::comm_homogeneous(vec![12.0, 3.0, 7.0, 18.0, 5.0, 9.0, 2.0, 15.0], 10.0)
            .expect("valid platform");

    let cm = CostModel::new(&app, &platform);
    println!(
        "pipeline: {} stages, total work {:.1}",
        app.n_stages(),
        app.total_work()
    );
    println!(
        "platform: {} processors, speeds {:?}",
        platform.n_procs(),
        platform.speeds()
    );

    // Lemma 1: the latency-optimal mapping puts everything on the fastest
    // processor — but its period is poor.
    let l_opt = cm.optimal_latency();
    let p_single = cm.single_proc_period();
    println!("\nLemma-1 mapping: latency {l_opt:.3} (optimal), period {p_single:.3}");

    // Ask each heuristic for a 2× throughput improvement (period ≤ half
    // the single-processor period), or a 2× latency budget for the
    // latency-fixed ones.
    println!(
        "\n{:<16} {:>9} {:>9} {:>9}  mapping",
        "heuristic", "feasible", "period", "latency"
    );
    for kind in HeuristicKind::ALL {
        let target = if kind.is_period_fixed() {
            0.5 * p_single
        } else {
            2.0 * l_opt
        };
        let res = kind.run(&cm, target);
        println!(
            "{:<16} {:>9} {:>9.3} {:>9.3}  {}",
            kind.label(),
            res.feasible,
            res.period,
            res.latency,
            res.mapping
        );
    }

    // H3 exposes its binary-search knobs.
    let custom = pipeline_workflows::core::sp_bi_p(
        &cm,
        0.5 * p_single,
        SpBiPOptions {
            search_iters: 50,
            ..SpBiPOptions::default()
        },
    );
    println!(
        "\nSp bi P with 50 search iterations: period {:.3}, latency {:.3}",
        custom.period, custom.latency
    );

    // Exact optimum for reference (exponential — fine at n = 6).
    let (p_exact, best) = pipeline_workflows::core::exact::exact_min_period(&cm);
    println!("exact minimal period: {p_exact:.3} via {best}");
}
