//! A DataCutter-style filtering chain (paper §6 related work): successive
//! filters over a very large data set, where communication dominates
//! computation — the regime of experiment E4 — plus the paper-§7
//! extensions: a fully heterogeneous network and deal-skeleton
//! replication when plain splitting hits its floor.
//!
//! ```text
//! cargo run --release --example datacutter_filters
//! ```

use pipeline_workflows::core::hetero::{hetero_sp_mono_p, HeteroSplitOptions};
use pipeline_workflows::core::replication::replicate_bottlenecks;
use pipeline_workflows::core::sp_mono_p;
use pipeline_workflows::model::{Application, CostModel, Platform};

fn main() {
    // Five filters progressively shrinking a 200 MB chunk; computation is
    // light relative to data movement.
    let app = Application::new(
        vec![20.0, 55.0, 35.0, 90.0, 15.0],
        vec![200.0, 160.0, 120.0, 60.0, 25.0, 10.0],
    )
    .expect("valid application");

    println!("== Communication Homogeneous cluster ==");
    let flat = Platform::comm_homogeneous(vec![30.0, 22.0, 18.0, 14.0, 9.0, 9.0, 6.0, 5.0], 10.0)
        .expect("valid platform");
    let cm = CostModel::new(&app, &flat);
    println!(
        "single-proc: period {:.2}, latency {:.2}",
        cm.single_proc_period(),
        cm.optimal_latency()
    );
    // Comm-dominated pipelines split reluctantly: each cut pays δ/b twice.
    let floor = sp_mono_p(&cm, 0.0);
    println!(
        "splitting floor: period {:.2} with {} intervals — {}",
        floor.period,
        floor.mapping.n_intervals(),
        floor.mapping
    );

    // Deal-skeleton replication (paper §7): round-robin the bottleneck
    // filter over spare processors to push the period below the floor.
    let rep = replicate_bottlenecks(&cm, &floor.mapping, 0.75 * floor.period);
    println!(
        "with replication: period {:.2} ({}), {} processors enrolled, latency {:.2}",
        rep.period,
        if rep.feasible { "target met" } else { "floor" },
        rep.mapping.n_procs_used(),
        rep.latency
    );
    for (iv, group) in rep.mapping.intervals().iter().zip(rep.mapping.replicas()) {
        if group.len() > 1 {
            println!(
                "  deal skeleton on {iv}: {} replicas {group:?}",
                group.len()
            );
        }
    }

    println!("\n== Fully heterogeneous network (paper §7 extension) ==");
    // Same machines, but a two-tier network: the first four share a fast
    // switch (b = 40), the rest hang off slow links (b = 4); cross-tier
    // traffic takes the slow path. I/O enters at the fast tier.
    let p = 8;
    let mut matrix = vec![vec![4.0; p]; p];
    for (i, row) in matrix.iter_mut().enumerate().take(4) {
        for (j, b) in row.iter_mut().enumerate().take(4) {
            if i != j {
                *b = 40.0;
            }
        }
    }
    let tiered = Platform::fully_heterogeneous(
        vec![30.0, 22.0, 18.0, 14.0, 9.0, 9.0, 6.0, 5.0],
        matrix,
        40.0,
    )
    .expect("valid platform");
    let cmh = CostModel::new(&app, &tiered);
    let single = cmh.period(&pipeline_workflows::model::IntervalMapping::all_on_fastest(
        &app, &tiered,
    ));
    println!("single-proc period: {single:.2}");
    for candidates in [1, 4] {
        let res = hetero_sp_mono_p(
            &cmh,
            0.0,
            HeteroSplitOptions {
                candidate_procs: candidates,
            },
        );
        println!(
            "hetero splitting floor (candidate pool {candidates}): period {:.2}, latency {:.2} — {}",
            res.period, res.latency, res.mapping
        );
    }
    println!(
        "\nnote: with the tiered network the scheduler keeps intervals inside the fast\n\
         tier — widening the candidate pool lets it skip nominally-faster processors\n\
         behind slow links, which the speed-ordered paper heuristics cannot express."
    );
}
