//! # pipeline-workflows
//!
//! Bi-criteria (latency/period) scheduling of pipeline workflows on
//! heterogeneous platforms — a full reproduction of
//!
//! > Anne Benoit, Veronika Rehn-Sonigo, Yves Robert,
//! > *Multi-criteria scheduling of pipeline workflows*,
//! > INRIA research report RR-6232 (IEEE CLUSTER 2007).
//!
//! A pipeline of `n` stages is mapped onto `p` different-speed processors
//! connected by identical links ("Communication Homogeneous" platforms).
//! Mappings assign *intervals* of consecutive stages to distinct
//! processors. Two antagonistic metrics are optimized: the **period**
//! (inverse throughput, eq. 1) and the **latency** (response time,
//! eq. 2). Minimizing latency is trivial (Lemma 1); minimizing the period
//! is NP-hard (Theorems 1–2, via the heterogeneous chains-to-chains
//! problem); the paper's answer is six polynomial splitting heuristics,
//! all implemented here, along with exact solvers, baselines, a
//! discrete-event validator, and the full experiment harness.
//!
//! ## Quickstart
//!
//! Prepare an instance once, then answer any number of typed solve
//! requests from its memoized trajectories:
//!
//! ```
//! use pipeline_workflows::model::{Application, Platform};
//! use pipeline_workflows::core::service::{PreparedInstance, SolveRequest, SolveError};
//! use pipeline_workflows::core::{Objective, Strategy};
//!
//! // A 4-stage pipeline: (work, input/output volumes).
//! let app = Application::new(
//!     vec![8.0, 20.0, 6.0, 12.0],          // w_1..w_4
//!     vec![4.0, 2.0, 6.0, 2.0, 4.0],       // δ_0..δ_4
//! ).unwrap();
//! // Five processors of different speeds, 10-wide links.
//! let platform = Platform::comm_homogeneous(vec![4.0, 9.0, 2.0, 7.0, 5.0], 10.0).unwrap();
//!
//! // One session per instance; every bound query after the first hits
//! // the cached heuristic trajectories (O(log) per query).
//! let session = PreparedInstance::new(app, platform);
//! let p_single = session.single_proc_period();
//!
//! // Minimize latency subject to a period budget, best heuristic wins.
//! let report = session
//!     .solve(&SolveRequest::new(Objective::MinLatencyForPeriod(0.7 * p_single))
//!         .strategy(Strategy::BestOfAll))
//!     .unwrap();
//! assert!(report.result.period <= 0.7 * p_single + 1e-9);
//! println!("{} via {}", report.result.mapping, report.solver); // provenance is a Copy enum
//!
//! // Too-tight bounds fail with a diagnosis, not a shrug: the error
//! // reports the instance's feasibility floor.
//! match session.solve(&SolveRequest::new(Objective::MinLatencyForPeriod(0.01 * p_single))
//!     .strategy(Strategy::BestOfAll))
//! {
//!     Err(SolveError::BoundBelowFloor { floor, .. }) => assert!(floor > 0.01 * p_single),
//!     other => panic!("expected a structured error, got {other:?}"),
//! }
//!
//! // The full period/latency trade-off in one query (exact on small
//! // instances, the union of the heuristic trajectories otherwise).
//! let front = session
//!     .solve(&SolveRequest::new(Objective::ParetoFront))
//!     .unwrap()
//!     .front
//!     .unwrap();
//! assert!(!front.is_empty());
//! ```
//!
//! The low-level API is still there for single runs: `sp_mono_p(&cm,
//! target)` and friends in [`core`], one call per (heuristic, bound)
//! pair.
//!
//! ### Migrating from `Scheduler::solve`
//!
//! The pre-v1 entry point `Scheduler::solve(&app, &pf, objective) ->
//! Option<Solution>` has been removed (it spent one release as a
//! deprecated shim). `Scheduler::solve_report` is the drop-in
//! replacement (`Ok(report)` where you matched `Some(sol)`, structured
//! [`core::SolveError`]s where you got `None`); hold a
//! [`core::PreparedInstance`] instead when the same instance answers more
//! than one query. Provenance is the `Copy` enum [`core::SolverId`] —
//! match on it or print `.label()` where you compared strings.
//!
//! ## Validating a mapping operationally
//!
//! ```
//! use pipeline_workflows::model::{Application, Platform, CostModel, IntervalMapping};
//! use pipeline_workflows::sim::{PipelineSim, SimConfig};
//!
//! let app = Application::uniform(3, 10.0, 2.0).unwrap();
//! let platform = Platform::comm_homogeneous(vec![5.0, 3.0], 10.0).unwrap();
//! let cm = CostModel::new(&app, &platform);
//! let mapping = IntervalMapping::all_on_fastest(&app, &platform);
//!
//! // Push 40 data sets through the discrete-event simulator.
//! let out = PipelineSim::new(&cm, &mapping, SimConfig::default()).run(40);
//! let analytic_period = cm.period(&mapping);
//! let steady = out.report.steady_period().unwrap();
//! assert!((steady - analytic_period).abs() < 1e-9);
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`model`] | `pipeline-model` | applications, platforms, mappings, cost model (eqs. 1–2), E1–E4 generators, the scenario zoo, instance + request/report wire formats |
//! | [`core`] | `pipeline-core` | the six heuristics, exact solvers, the solver-service API (`PreparedInstance`), Subhlok–Vondran baseline, Pareto tools, §7 extensions |
//! | [`chains`] | `pipeline-chains` | chains-to-chains algorithms and the NMWTS NP-hardness gadget (Theorem 1) |
//! | [`assign`] | `pipeline-assign` | Hungarian / bottleneck assignment used by the exact solvers |
//! | [`sim`] | `pipeline-sim` | one-port discrete-event simulator, traces, Gantt charts |
//! | [`experiments`] | `pipeline-experiments` | figure/table regeneration harness, sharded sweep engine, batched solving (`solve_batch`) |
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results of every figure and table.

pub use pipeline_assign as assign;
pub use pipeline_chains as chains;
pub use pipeline_core as core;
pub use pipeline_experiments as experiments;
pub use pipeline_model as model;
pub use pipeline_sim as sim;

/// Workspace version, for binaries that report it.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Touch one item per re-exported crate so link failures surface
        // here rather than in downstream users.
        let _ = crate::model::ExperimentKind::E1;
        let _ = crate::core::HeuristicKind::ALL;
        let _ = crate::chains::ChainPartition::single(1);
        let _ = crate::assign::CostMatrix::from_rows(1, 1, vec![0.0]);
        let _ = crate::sim::SimConfig::default();
        assert_eq!(crate::experiments::PAPER_FIGURES.len(), 12);
        assert!(!crate::VERSION.is_empty());
    }
}
