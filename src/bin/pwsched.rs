//! `pwsched` — schedule a pipeline instance from a file, serve solve
//! requests over stdin or TCP, sweep the scenario zoo, or record a
//! kernel perf baseline.
//!
//! ```text
//! pwsched <instance-file> [--period BOUND | --latency BOUND | --min-period
//!         | --min-latency | --pareto-front]
//!         [--heuristic h1|h2|h3|h4|h5|h6|h7|best|exact|auto]
//!         [--simulate N] [--gantt]
//! pwsched solve <instance-file> --stdin
//! pwsched serve <addr> [--default-instance FILE] [--max-conns N]
//!         [--cache-capacity N] [--idle-timeout-secs S]
//! pwsched load <addr> [--replay FILE | --connections N --requests M]
//! pwsched bench-serve [--quick] [--out FILE] [--check BASELINE] [--tolerance F]
//! pwsched bench-delta [--quick] [--out FILE] [--check BASELINE] [--tolerance F]
//! pwsched bench-tenant [--quick] [--out FILE] [--check BASELINE] [--tolerance F]
//! pwsched --sweep <family|all> [--stages N] [--procs P] [--instances K]
//!         [--grid G] [--threads T] [--seed S]
//! pwsched bench-kernel [--out FILE] [--exact-n N] [--instances K]
//!         [--threads T] [--check BASELINE]
//! pwsched bench-sweep [--out FILE] [--sizes N1,N2,..] [--instances K]
//!         [--grid G] [--batch-jobs J] [--check BASELINE] [--tolerance F]
//! ```
//!
//! `serve` is the persistent TCP front: the same line-oriented wire
//! format v1, one report line per request line per connection, behind a
//! shared LRU cache of prepared instances (`core::serve`). `load` is the
//! matching client — a replay mode for CI smoke diffs and a generated
//! scenario-zoo corpus for load testing. `bench-serve` runs an
//! in-process server through cold and warm phases at 1/2/4 connections
//! and emits `BENCH_serve.json`; `--check` gates warm requests/sec
//! against a committed baseline.
//!
//! `bench-delta` measures the online re-solve path: a speed-drift
//! update stream answered incrementally (`PreparedInstance::apply_in`
//! carrying trajectories and the split memo across updates) vs the
//! same stream prepared from scratch per update, with answers asserted
//! bit-identical. Emits `BENCH_delta.json`; `--check` gates the
//! per-size delta-vs-scratch speedup against a committed baseline.
//!
//! `bench-tenant` measures the multi-tenant co-scheduler
//! (`core::tenancy`): heuristic-vs-exact partition quality over the
//! tenant zoo for every partition objective, plus `solve_tenant_batch`
//! throughput by thread count. Emits `BENCH_tenant.json`; `--check`
//! gates every per-(family, objective) mean score ratio against a
//! committed baseline.
//!
//! `bench-kernel` measures the solver kernel — per-family sweep
//! wall-times, exact-solver latencies at growing `n` (zoo rows plus a
//! uniform-speed cluster section where the v3 dominance DP carries the
//! frontier to n = 30 at p = 16), split-step throughput, and H3's
//! memoized binary search — and emits one JSON object
//! (`BENCH_kernel.json` by convention) so successive PRs have a perf
//! trajectory to compare against. `--threads` routes the exact rows
//! through the sharded branch-and-bound (bit-identical values at any
//! thread count); `--check` gates every exact `min_period` **bit-wise**
//! against a committed baseline. CI runs it in release mode with
//! `--exact-n 24 --threads 2 --check` under a timeout: a pruning
//! regression shows up as a timeout, an optimality regression as a
//! bits mismatch.
//!
//! `bench-sweep` measures the sweep/batch *throughput* path the
//! zero-allocation workspaces optimize: full-zoo sweeps at each `--sizes`
//! entry (per-family wall time, skipped-solver counts, bound-query
//! throughput), per-family × heuristic front quality against the exact
//! Pareto front at an exactly-solvable size (hypervolume ratio +
//! distance-to-front, gated by `--check`), `solve_batch` items/sec with
//! per-item fresh workspaces vs one reused workspace, and a peak-RSS
//! proxy (`VmHWM` on Linux). Emits `BENCH_sweep.json` by convention; CI
//! runs a small-`n` smoke under timeout so an allocation regression
//! fails loudly.
//!
//! The instance file uses the `pipeline-instance v1` text format, and the
//! service mode speaks the line-oriented request/report wire format —
//! both in `pipeline_model::io`. `pwsched solve <file> --stdin` prepares
//! the instance once, then answers one `solve …` request per input line
//! with one `report …` line (requests may override the instance with
//! `instance=<path>`; prepared instances are cached per path), so the
//! binary can sit behind a socket or pipe and serve traffic. Default
//! objective: `--min-period`; default strategy: `auto` (exact for small
//! instances, best-of-all heuristics otherwise).
//!
//! `--sweep` runs the sharded sweep engine over one registered scenario
//! family (by stable label — `e1`…`e4`, `heavy-tail`, `two-tier`,
//! `comm-dominant`, `power-law`, `adversarial`) or over the whole zoo
//! (`all`), printing per-family landmark summaries. CI's smoke job uses
//! it to exercise every registered family on two threads.

use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pipeline_workflows::core::serve::{self, ServeConfig, ServeState};
use pipeline_workflows::core::service::{PreparedInstance, SolveRequest};
use pipeline_workflows::core::SolveWorkspace;
use pipeline_workflows::core::{Objective, Scheduler, Strategy};
use pipeline_workflows::experiments::{
    request_lines, run_load, run_scenario, scenario_zoo, write_zoo_instances, LoadReport,
};
use pipeline_workflows::model::io::{format_report, parse_instance};
use pipeline_workflows::model::scenario::ScenarioFamily;
use pipeline_workflows::sim::{Gantt, InputPolicy, PipelineSim, SimConfig};

fn usage() -> ! {
    eprintln!(
        "usage: pwsched <instance-file> \
         [--period B | --latency B | --min-period | --min-latency | --pareto-front]\n\
         \t[--heuristic h1|h2|h3|h4|h5|h6|h7|best|exact|auto] [--simulate N] [--gantt]\n\
         \tpwsched solve <instance-file> --stdin\n\
         \tpwsched --sweep <family|all> [--stages N] [--procs P] [--instances K]\n\
         \t[--grid G] [--threads T] [--seed S]\n\
         \tpwsched bench-kernel [--out FILE] [--exact-n N] [--instances K]\n\
         \t[--threads T] [--check BASELINE]\n\
         \tpwsched bench-sweep [--out FILE] [--sizes N1,N2,..] [--instances K]\n\
         \t[--grid G] [--batch-jobs J] [--check BASELINE] [--tolerance F]\n\
         \tpwsched serve <addr> [--default-instance FILE] [--max-conns N]\n\
         \t[--cache-capacity N] [--idle-timeout-secs S] [--request-quota N]\n\
         \t[--conn-deadline-secs S]\n\
         \tpwsched chaos [--families F1,F2|all] [--heuristics H1,H2|all]\n\
         \t[--plans P1,P2|all] [--stages N] [--procs P] [--instances K]\n\
         \t[--datasets D] [--seed S] [--threads T] [--verify-threads]\n\
         \tpwsched bench-failover [--quick] [--out FILE] [--check BASELINE]\n\
         \t[--tolerance F]\n\
         \tpwsched load <addr> [--replay FILE | --connections N --requests M\n\
         \t[--stages n] [--procs p]]\n\
         \tpwsched bench-serve [--quick] [--out FILE] [--check BASELINE]\n\
         \t[--tolerance F]\n\
         \tpwsched bench-delta [--quick] [--out FILE] [--check BASELINE]\n\
         \t[--tolerance F]\n\
         \tpwsched bench-tenant [--quick] [--out FILE] [--check BASELINE]\n\
         \t[--tolerance F]"
    );
    std::process::exit(2);
}

fn parse_strategy(s: &str) -> Strategy {
    s.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

fn load_instance(path: &str) -> PreparedInstance {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let (app, platform) = parse_instance(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    PreparedInstance::new(app, platform)
}

/// Builds the shared serve state and fails fast if the default instance
/// does not load — a misconfigured service should die at startup, not on
/// its first request.
fn serve_state(default_path: Option<String>, cache_capacity: usize) -> Arc<ServeState> {
    let state = Arc::new(ServeState::new(default_path, cache_capacity));
    if let Err(e) = state.preload_default() {
        eprintln!("{e}");
        std::process::exit(1);
    }
    state
}

/// Service mode over stdin: one report line per request line, answered
/// by the same [`ServeState::answer_line`] path as the TCP front (which
/// is what keeps the two transports byte-identical).
fn run_service(mut args: impl Iterator<Item = String>) -> ! {
    let Some(default_path) = args.next() else {
        usage()
    };
    match args.next().as_deref() {
        Some("--stdin") => {}
        _ => usage(),
    }
    if args.next().is_some() {
        usage();
    }
    let state = serve_state(Some(default_path), ServeConfig::default().cache_capacity);
    let mut ws = SolveWorkspace::new();

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut line_no: u64 = 0;
    for line in stdin.lock().lines() {
        let line = line.expect("stdin readable");
        line_no += 1;
        let Some(report) = state.answer_line(&line, line_no, &mut ws) else {
            continue;
        };
        let outcome = writeln!(out, "{}", format_report(&report)).and_then(|()| out.flush());
        match outcome {
            Ok(()) => {}
            // A disconnecting consumer (EPIPE) ends the service cleanly;
            // any other stdout failure is fatal.
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
            Err(e) => {
                eprintln!("cannot write report: {e}");
                std::process::exit(1);
            }
        }
    }
    std::process::exit(0);
}

/// Installs a handler that flips `stop` on SIGINT/SIGTERM, so the serve
/// loop drains in-flight connections instead of dying mid-report. Raw
/// `signal(2)` through the libc std already links — no new dependency.
#[cfg(unix)]
fn install_stop_signals(stop: Arc<AtomicBool>) {
    use std::sync::OnceLock;
    static STOP: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    extern "C" fn on_signal(_sig: i32) {
        // Only the atomic store — everything else is deferred to the
        // accept loop's next poll.
        if let Some(flag) = STOP.get() {
            flag.store(true, Ordering::Relaxed);
        }
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    let _ = STOP.set(stop);
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_stop_signals(_stop: Arc<AtomicBool>) {}

fn resolve_addr(addr: &str) -> SocketAddr {
    match addr.to_socket_addrs().ok().and_then(|mut it| it.next()) {
        Some(resolved) => resolved,
        None => {
            eprintln!("cannot resolve address {addr:?} (want host:port)");
            std::process::exit(1);
        }
    }
}

/// `serve <addr>`: the persistent TCP front. Binds, then runs the accept
/// loop on the main thread until SIGINT/SIGTERM initiates a graceful
/// drain; final counters go to stderr.
fn run_serve(mut args: impl Iterator<Item = String>) -> ! {
    let Some(addr) = args.next() else { usage() };
    let mut config = ServeConfig::default();
    let mut default_instance: Option<String> = None;
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--default-instance" => default_instance = Some(value),
            "--max-conns" => config.max_connections = value.parse().unwrap_or_else(|_| usage()),
            "--cache-capacity" => config.cache_capacity = value.parse().unwrap_or_else(|_| usage()),
            "--idle-timeout-secs" => {
                config.idle_timeout = Duration::from_secs(value.parse().unwrap_or_else(|_| usage()))
            }
            "--request-quota" => {
                config.request_quota = Some(value.parse().unwrap_or_else(|_| usage()))
            }
            "--conn-deadline-secs" => {
                config.conn_deadline = Some(Duration::from_secs(
                    value.parse().unwrap_or_else(|_| usage()),
                ))
            }
            _ => usage(),
        }
    }
    if config.max_connections < 1 || config.cache_capacity < 1 {
        eprintln!("--max-conns and --cache-capacity must be >= 1");
        usage();
    }
    if config.request_quota == Some(0) {
        eprintln!("--request-quota must be >= 1");
        usage();
    }
    let listener = TcpListener::bind(&addr).unwrap_or_else(|e| {
        eprintln!("cannot bind {addr}: {e}");
        std::process::exit(1);
    });
    let local = listener
        .local_addr()
        .expect("bound listener has an address");
    let state = serve_state(default_instance, config.cache_capacity);
    let stop = Arc::new(AtomicBool::new(false));
    install_stop_signals(Arc::clone(&stop));
    eprintln!(
        "pwsched serve: listening on {local} (max-conns {}, cache {}, idle-timeout {}s)",
        config.max_connections,
        config.cache_capacity,
        config.idle_timeout.as_secs()
    );
    let stats = serve::serve(listener, state, config, stop);
    eprintln!(
        "pwsched serve: drained — {} connections ({} rejected), {} requests ({} failures), \
         cache {}/{} hits ({} evictions)",
        stats.connections,
        stats.rejected,
        stats.requests,
        stats.failures,
        stats.cache_hits,
        stats.cache_hits + stats.cache_misses,
        stats.cache_evictions
    );
    std::process::exit(0);
}

/// Streams a request file to the server in lockstep (one request line,
/// one report line) and prints the reports to stdout — the TCP twin of
/// `pwsched solve <file> --stdin < requests`, used by the CI smoke job
/// to diff the two transports byte for byte.
fn replay_file(addr: SocketAddr, path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let stream = std::net::TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .unwrap_or_else(|e| {
            eprintln!("cannot connect to {addr}: {e}");
            std::process::exit(1);
        });
    stream.set_nodelay(true).expect("nodelay is settable");
    let mut writer = stream.try_clone().expect("socket clones");
    let mut reader = std::io::BufReader::new(stream);
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in text.lines() {
        let trimmed = line.trim();
        writeln!(writer, "{line}").expect("request writes");
        writer.flush().expect("request flushes");
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue; // the server stays silent on comment lines
        }
        let mut response = String::new();
        let n = reader.read_line(&mut response).expect("report reads");
        if n == 0 {
            eprintln!("server closed the connection mid-replay");
            std::process::exit(1);
        }
        out.write_all(response.as_bytes()).expect("stdout writes");
    }
    out.flush().expect("stdout flushes");
    std::process::exit(0);
}

/// A quantile for display: the value in µs, or `-` when nothing was
/// answered (an all-errors run has no latency distribution).
fn fmt_us(v: Option<u64>) -> String {
    v.map_or_else(|| "-".to_string(), |us| us.to_string())
}

fn print_load_phase(label: &str, connections: usize, report: &LoadReport) {
    println!(
        "{label:<6} conns={connections:<2} answered={:<5} errors={:<3} \
         p50_us={:<8} p99_us={:<8} req_per_sec={:.0}",
        report.answered,
        report.errors,
        fmt_us(report.p50_us()),
        fmt_us(report.p99_us()),
        report.requests_per_sec()
    );
}

/// `load <addr>`: the load generator. `--replay FILE` streams a request
/// file and prints the reports (CI smoke); otherwise fires a generated
/// scenario-zoo corpus in a cold pass and a warm pass and prints
/// latency/throughput summaries.
fn run_load_cmd(mut args: impl Iterator<Item = String>) -> ! {
    let Some(addr) = args.next() else { usage() };
    let addr = resolve_addr(&addr);
    let mut replay: Option<String> = None;
    let mut connections = 2usize;
    let mut requests = 100usize;
    let mut stages = 24usize;
    let mut procs = 12usize;
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--replay" => replay = Some(value),
            "--connections" => connections = value.parse().unwrap_or_else(|_| usage()),
            "--requests" => requests = value.parse().unwrap_or_else(|_| usage()),
            "--stages" => stages = value.parse().unwrap_or_else(|_| usage()),
            "--procs" => procs = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if let Some(path) = replay {
        replay_file(addr, &path);
    }
    if connections < 1 || requests < 1 || stages < 2 || procs < 1 {
        eprintln!("--connections/--requests/--procs must be >= 1, --stages >= 2");
        usage();
    }
    let dir = std::env::temp_dir().join(format!("pwsched-load-{}", std::process::id()));
    let paths = write_zoo_instances(&dir, "load", stages, procs, 2007).unwrap_or_else(|e| {
        eprintln!("cannot write instance corpus: {e}");
        std::process::exit(1);
    });
    let lines = request_lines(&paths, requests);
    // Pass 1 pays instance loads and lazy trajectory memoization on the
    // server; pass 2 answers from the shared cache.
    let cold = run_load(addr, &lines, connections);
    print_load_phase("cold", connections, &cold);
    let warm = run_load(addr, &lines, connections);
    print_load_phase("warm", connections, &warm);
    let _ = std::fs::remove_dir_all(&dir);
    let failed = cold.errors + warm.errors > 0;
    std::process::exit(if failed { 1 } else { 0 });
}

/// The `"min_period_bits"` value of the exact row tagged `"id": id`, or
/// `None` when the baseline has no such row — the same no-parser JSON
/// awareness as [`extract_f64_all`], keyed by row id so baselines
/// recorded at different `--exact-n` depths still gate their common
/// rows.
fn extract_row_bits(json: &str, id: &str) -> Option<String> {
    let at = json.find(&format!("\"id\": \"{id}\""))?;
    let rest = &json[at..];
    let needle = "\"min_period_bits\": \"";
    let at = rest.find(needle)?;
    let rest = &rest[at + needle.len()..];
    Some(rest[..rest.find('"')?].to_string())
}

/// All `"key": <number>` values in `json`, in order of appearance — just
/// enough JSON awareness to gate one benchmark file against another
/// without a parser dependency.
fn extract_f64_all(json: &str, key: &str) -> Vec<f64> {
    let needle = format!("\"{key}\":");
    let mut out = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find(&needle) {
        rest = &rest[at + needle.len()..];
        let value: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        if let Ok(v) = value.parse() {
            out.push(v);
        }
    }
    out
}

/// `bench-serve`: record the serve-path baseline as one JSON object —
/// cold and warm phases through a real in-process TCP server, warm
/// throughput at 1/2/4 connections, and the shared-cache hit rate.
/// `--check FILE` gates warm requests/sec against a committed baseline.
fn run_bench_serve(mut args: impl Iterator<Item = String>) -> ! {
    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.30f64;
    let mut quick = false;
    while let Some(flag) = args.next() {
        if flag == "--quick" {
            quick = true;
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--check" => check_path = Some(value),
            "--tolerance" => tolerance = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("--tolerance must be in [0, 1)");
        usage();
    }
    // Quick mode (CI) shrinks instances and the corpus, not the shape:
    // the same phases, connection counts, and JSON schema either way.
    // Phases stay hundreds of requests long even in quick mode — at
    // microsecond request latencies, short phases measure scheduler
    // noise, not the server.
    let (stages, procs, requests) = if quick { (16, 8, 600) } else { (48, 24, 1200) };
    let warm_conns = [1usize, 2, 4];

    let dir = std::env::temp_dir().join(format!("pwsched-bench-serve-{}", std::process::id()));
    let paths = write_zoo_instances(&dir, "bench", stages, procs, 2007).unwrap_or_else(|e| {
        eprintln!("cannot write instance corpus: {e}");
        std::process::exit(1);
    });
    let lines = request_lines(&paths, requests);

    let config = ServeConfig::default();
    let state = Arc::new(ServeState::new(None, config.cache_capacity));
    let handle = serve::spawn("127.0.0.1:0", Arc::clone(&state), config).unwrap_or_else(|e| {
        eprintln!("cannot start in-process server: {e}");
        std::process::exit(1);
    });
    let addr = handle.local_addr();

    // Cold: every instance path is a cache miss at first touch and every
    // first bound query pays the lazy trajectory memoization.
    let cold = run_load(addr, &lines, 1);
    // Warm: the same corpus answered from the shared prepared-instance
    // cache, at each connection count. Best of three passes per count —
    // scheduler noise only ever slows a pass down, so the max is the
    // serve path's actual capability and is what stays comparable
    // across runs.
    let warm: Vec<(usize, LoadReport)> = warm_conns
        .iter()
        .map(|&c| {
            let best = (0..3)
                .map(|_| run_load(addr, &lines, c))
                .max_by(|a, b| {
                    a.requests_per_sec()
                        .partial_cmp(&b.requests_per_sec())
                        .expect("rates are finite")
                })
                .expect("three passes ran");
            (c, best)
        })
        .collect();
    let stats = handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let json_us = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |us| us.to_string());
    let phase_json = |connections: usize, r: &LoadReport| {
        format!(
            "{{\"connections\": {connections}, \"requests\": {}, \"errors\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"requests_per_sec\": {:.1}}}",
            r.answered + r.errors,
            r.errors,
            json_us(r.p50_us()),
            json_us(r.p99_us()),
            r.requests_per_sec()
        )
    };
    let mut json = String::from("{\n  \"bench\": \"serve\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"stages\": {stages}, \"procs\": {procs}, \
         \"instances\": {}, \"requests_per_phase\": {requests}}},\n",
        paths.len()
    ));
    json.push_str(&format!("  \"cold\": {},\n", phase_json(1, &cold)));
    json.push_str("  \"warm\": [");
    for (i, (c, r)) in warm.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&phase_json(*c, r));
    }
    json.push_str("],\n");
    json.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
         \"hit_rate\": {:.4}}}\n}}\n",
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.cache_hit_rate()
    ));

    match &out_path {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    let transport_errors: usize = cold.errors + warm.iter().map(|(_, r)| r.errors).sum::<usize>();
    if transport_errors > 0 {
        eprintln!("bench-serve: {transport_errors} transport errors");
        std::process::exit(1);
    }

    // Regression gate: peak warm requests/sec (the best connection
    // count) must stay within `tolerance` of the committed baseline's
    // peak. Gating the peak rather than each phase keeps the gate
    // meaningful under scheduler noise — a real serve-path regression
    // drags every phase down, noise rarely drags down all three. (Cold
    // is dominated by one-time preparation and is not gated.)
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let base_rps = extract_f64_all(&baseline, "requests_per_sec");
        // Index 0 is the cold phase; the warm phases follow.
        if base_rps.len() != warm_conns.len() + 1 {
            eprintln!(
                "baseline {path} has {} requests_per_sec entries, expected {}",
                base_rps.len(),
                warm_conns.len() + 1
            );
            std::process::exit(1);
        }
        let base_peak = base_rps[1..].iter().cloned().fold(0.0f64, f64::max);
        let ours_peak = warm
            .iter()
            .map(|(_, r)| r.requests_per_sec())
            .fold(0.0f64, f64::max);
        let floor = base_peak * (1.0 - tolerance);
        if ours_peak < floor {
            eprintln!(
                "REGRESSION: peak warm requests/sec {ours_peak:.1} < {floor:.1} \
                 ({base_peak:.1} - {:.0}%)",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
        eprintln!("ok: peak warm requests/sec {ours_peak:.1} >= {floor:.1}");
    }
    std::process::exit(0);
}

/// `bench-delta`: measure the online re-solve path — a speed-drift
/// update stream answered incrementally (`PreparedInstance::apply_in`,
/// carrying trajectories and the split memo across updates) against the
/// same stream answered from scratch (a fresh `PreparedInstance` per
/// update). Both paths must produce bit-identical answers — the bench
/// asserts it — so the emitted `speedup` is pure reuse, not a different
/// algorithm. `--check FILE` gates per-size speedups against a committed
/// baseline (`BENCH_delta.json` by convention).
fn run_bench_delta(mut args: impl Iterator<Item = String>) -> ! {
    use pipeline_workflows::core::HeuristicKind;
    use pipeline_workflows::model::scenario::{DriftFamily, DriftGenerator};
    use std::time::Instant;

    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.75f64;
    let mut quick = false;
    while let Some(flag) = args.next() {
        if flag == "--quick" {
            quick = true;
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--check" => check_path = Some(value),
            "--tolerance" => tolerance = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("--tolerance must be in [0, 1)");
        usage();
    }
    // Quick mode (CI) runs the one size the acceptance gate cares
    // about; the full run adds a smaller and a larger platform. Same
    // stream length, solve rotation, and JSON schema either way, so
    // `--check` matches quick runs against the committed full baseline
    // by `n`.
    let sizes: Vec<usize> = if quick { vec![120] } else { vec![60, 120, 240] };
    let reps = 3usize;
    let n_updates = 20usize;
    let bound_factors = [0.8f64, 0.55, 0.4];

    // One update's worth of queries: period-bound latency minimization
    // at a few fractions of the *current* single-processor period, by
    // each trajectory-backed heuristic — exactly the memoized artifacts
    // `apply_in` carries across updates. H4 stays out of the rotation on
    // purpose: its binary search consults the bound and re-runs per
    // query in *both* paths, so including it would measure the solver,
    // not the reuse. Answers come back as bit patterns so the two paths
    // can be compared exactly.
    let kinds = [
        HeuristicKind::SpMonoP,
        HeuristicKind::ThreeExploMono,
        HeuristicKind::ThreeExploBi,
    ];
    let solve_round = |inst: &PreparedInstance, ws: &mut SolveWorkspace| -> Vec<u64> {
        let p0 = inst.single_proc_period();
        let mut bits = Vec::new();
        for f in bound_factors {
            for kind in kinds {
                let request = SolveRequest::new(Objective::MinLatencyForPeriod(f * p0))
                    .strategy(Strategy::Heuristic(kind));
                match inst.solve_in(&request, ws) {
                    Ok(report) => {
                        bits.push(report.result.period.to_bits());
                        bits.push(report.result.latency.to_bits());
                        bits.push(u64::from(report.result.feasible));
                    }
                    Err(_) => bits.push(u64::MAX),
                }
            }
        }
        bits
    };

    let mut size_entries: Vec<String> = Vec::new();
    let mut ours: Vec<(usize, f64)> = Vec::new();
    for &n in &sizes {
        // A platform as wide as the pipeline: online platforms have
        // spare capacity, and the drifting straggler (the slowest
        // processor) mostly stays out of the speed-order prefix the
        // recorded trajectories consulted — the reuse case the
        // incremental path exists for. (Genuine order crossings still
        // happen along the stream and are re-recorded, and the bench
        // asserts the answers match scratch either way.)
        let p = n;
        let gen = DriftGenerator::new(DriftFamily::SpeedDrift, n, p);
        let (app0, pf0) = gen.initial(2007);
        let stream = gen.updates(2007, n_updates);

        let mut delta_secs = f64::INFINITY;
        let mut scratch_secs = f64::INFINITY;
        let mut delta_bits: Vec<u64> = Vec::new();
        let mut scratch_bits: Vec<u64> = Vec::new();
        for rep in 0..reps {
            // Incremental path: warm the base session (untimed — the
            // steady-state update cost is what this measures), then
            // chain every update through `apply_in` and one workspace.
            let mut ws = SolveWorkspace::new();
            let mut cur = PreparedInstance::new(app0.clone(), pf0.clone());
            let _ = solve_round(&cur, &mut ws);
            let t0 = Instant::now();
            let mut bits = Vec::new();
            for delta in &stream {
                let next = cur.apply_in(delta, &mut ws).unwrap_or_else(|e| {
                    eprintln!("drift stream delta rejected: {e}");
                    std::process::exit(1);
                });
                bits.extend(solve_round(&next, &mut ws));
                cur = next;
            }
            delta_secs = delta_secs.min(t0.elapsed().as_secs_f64());
            if rep == 0 {
                delta_bits = bits;
            } else {
                assert_eq!(bits, delta_bits, "delta path must be deterministic");
            }

            // Scratch path: the same stream and the same queries, but
            // every update pays a full preparation (trajectory
            // recording, cold split memo) on a fresh instance.
            let mut ws = SolveWorkspace::new();
            let (mut app, mut pf) = (app0.clone(), pf0.clone());
            let base = PreparedInstance::new(app.clone(), pf.clone());
            let _ = solve_round(&base, &mut ws);
            let t0 = Instant::now();
            let mut bits = Vec::new();
            for delta in &stream {
                let (next_app, next_pf) = delta.apply_to(&app, &pf).unwrap_or_else(|e| {
                    eprintln!("drift stream delta rejected: {e}");
                    std::process::exit(1);
                });
                app = next_app;
                pf = next_pf;
                let inst = PreparedInstance::new(app.clone(), pf.clone());
                bits.extend(solve_round(&inst, &mut ws));
            }
            scratch_secs = scratch_secs.min(t0.elapsed().as_secs_f64());
            if rep == 0 {
                scratch_bits = bits;
            } else {
                assert_eq!(bits, scratch_bits, "scratch path must be deterministic");
            }
        }
        assert_eq!(
            delta_bits, scratch_bits,
            "incremental answers must be bit-identical to scratch (n={n})"
        );
        let speedup = scratch_secs / delta_secs;
        eprintln!(
            "n={n:<4} p={p:<4} delta_ms={:<10.3} scratch_ms={:<10.3} speedup={speedup:.2}",
            delta_secs * 1e3,
            scratch_secs * 1e3
        );
        size_entries.push(format!(
            "{{\"n\": {n}, \"p\": {p}, \"updates\": {n_updates}, \
             \"delta_ms\": {:.3}, \"scratch_ms\": {:.3}, \"speedup\": {speedup:.2}}}",
            delta_secs * 1e3,
            scratch_secs * 1e3
        ));
        ours.push((n, speedup));
    }

    let mut json = String::from("{\n  \"bench\": \"delta\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"family\": \"speed-drift\", \
         \"updates_per_stream\": {n_updates}, \"solves_per_update\": {}, \"reps\": {reps}}},\n",
        bound_factors.len() * kinds.len()
    ));
    json.push_str("  \"sizes\": [");
    json.push_str(&size_entries.join(", "));
    json.push_str("]\n}\n");

    match &out_path {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    // Regression gate: for every size we ran, the speedup must stay
    // within `tolerance` of the committed baseline's entry at the same
    // `n`. The tolerance is generous by default because the delta path
    // is sub-millisecond and the gated quantity is a ratio of two
    // wall-clocks — but a hard floor backs it up: at `n >= 120` the
    // incremental path must beat scratch at least 5x outright (the
    // reuse story this benchmark exists to prove), and no size may be
    // slower than scratch.
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let base_n = extract_f64_all(&baseline, "n");
        let base_speedup = extract_f64_all(&baseline, "speedup");
        if base_speedup.is_empty() || base_n.len() != base_speedup.len() {
            eprintln!(
                "baseline {path} is malformed: {} n entries vs {} speedup entries",
                base_n.len(),
                base_speedup.len()
            );
            std::process::exit(1);
        }
        for (n, speedup) in &ours {
            let Some(idx) = base_n.iter().position(|&bn| bn == *n as f64) else {
                eprintln!("baseline {path} has no entry for n={n}");
                std::process::exit(1);
            };
            let hard_floor = if *n >= 120 { 5.0 } else { 1.0 };
            let floor = (base_speedup[idx] * (1.0 - tolerance)).max(hard_floor);
            if *speedup < floor {
                eprintln!(
                    "REGRESSION: n={n} delta-vs-scratch speedup {speedup:.2} < {floor:.2} \
                     (baseline {:.2} - {:.0}%)",
                    base_speedup[idx],
                    tolerance * 100.0
                );
                std::process::exit(1);
            }
            eprintln!("ok: n={n} delta-vs-scratch speedup {speedup:.2} >= {floor:.2}");
        }
    }
    std::process::exit(0);
}

/// `chaos`: run the chaos study — zoo families × heuristics × named
/// fault plans through the deterministic fault simulator, with the
/// ride-it-out vs re-plan comparison on platform faults. Output is
/// bit-identical for every `--threads` value; `--verify-threads` proves
/// it on the spot by re-running at 1/2/4 threads and comparing
/// fingerprints.
fn run_chaos(mut args: impl Iterator<Item = String>) -> ! {
    use pipeline_workflows::core::HeuristicKind;
    use pipeline_workflows::experiments::{
        chaos_fingerprint, chaos_study, render_chaos, ChaosParams, ChaosPlanKind,
    };

    let mut params = ChaosParams {
        threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        ..ChaosParams::default()
    };
    let mut verify_threads = false;
    while let Some(flag) = args.next() {
        if flag == "--verify-threads" {
            verify_threads = true;
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--families" => {
                if value != "all" {
                    params.families = value
                        .split(',')
                        .map(|l| {
                            ScenarioFamily::from_label(l.trim()).unwrap_or_else(|| {
                                eprintln!("unknown family {l}");
                                usage();
                            })
                        })
                        .collect();
                }
            }
            "--heuristics" => {
                if value == "all" {
                    params.heuristics = HeuristicKind::ALL.to_vec();
                } else {
                    params.heuristics = value
                        .split(',')
                        .map(|l| {
                            l.trim().parse::<HeuristicKind>().unwrap_or_else(|e| {
                                eprintln!("{e}");
                                usage();
                            })
                        })
                        .collect();
                }
            }
            "--plans" => {
                if value != "all" {
                    params.plans = value
                        .split(',')
                        .map(|l| {
                            ChaosPlanKind::from_label(l.trim()).unwrap_or_else(|| {
                                eprintln!("unknown plan {l} (speed-dip|fail-stop|jitter|burst)");
                                usage();
                            })
                        })
                        .collect();
                }
            }
            "--stages" => params.n_stages = value.parse().unwrap_or_else(|_| usage()),
            "--procs" => params.n_procs = value.parse().unwrap_or_else(|_| usage()),
            "--instances" => params.n_instances = value.parse().unwrap_or_else(|_| usage()),
            "--datasets" => params.n_datasets = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => params.seed = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => params.threads = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if params.n_stages < 2
        || params.n_procs < 1
        || params.n_instances < 1
        || params.n_datasets < 1
        || params.threads < 1
    {
        eprintln!("--stages must be >= 2, the other counts >= 1");
        usage();
    }

    let rows = chaos_study(&params);
    println!(
        "chaos study: {} famil{}, {} heuristic{}, {} plan{}, {} instances, {} data sets, seed {}",
        params.families.len(),
        if params.families.len() == 1 {
            "y"
        } else {
            "ies"
        },
        params.heuristics.len(),
        if params.heuristics.len() == 1 {
            ""
        } else {
            "s"
        },
        params.plans.len(),
        if params.plans.len() == 1 { "" } else { "s" },
        params.n_instances,
        params.n_datasets,
        params.seed
    );
    print!("{}", render_chaos(&rows));

    if verify_threads {
        let fp = chaos_fingerprint(&rows);
        for t in [1usize, 2, 4] {
            let mut p = params.clone();
            p.threads = t;
            let other = chaos_fingerprint(&chaos_study(&p));
            if other != fp {
                eprintln!("FAIL: chaos study differs at {t} thread(s)");
                std::process::exit(1);
            }
        }
        println!("thread-count invariance: OK (1/2/4 threads, fingerprint {fp:#018x})");
    }
    std::process::exit(0);
}

/// `bench-failover`: measure fault recovery — the warm-started replan
/// (`core::replan` riding `PreparedInstance::apply_in`) against a full
/// re-prepare-and-solve from scratch on the degraded platform, for a
/// speed drift and a fail-stop at each size. The two paths are asserted
/// bit-identical before any timing is trusted. Emits
/// `BENCH_failover.json`; `--check` gates each case's warm-vs-scratch
/// speedup against a committed baseline (with an outright `>= 1` floor:
/// the warm path must never lose) and the deterministic post-fault
/// period ratio exactly.
fn run_bench_failover(mut args: impl Iterator<Item = String>) -> ! {
    use pipeline_workflows::core::replan::{replan, DetectedFault};
    use pipeline_workflows::model::scenario::{ScenarioGenerator, ScenarioParams};
    use std::time::Instant;

    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.75f64;
    let mut quick = false;
    while let Some(flag) = args.next() {
        if flag == "--quick" {
            quick = true;
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--check" => check_path = Some(value),
            "--tolerance" => tolerance = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("--tolerance must be in [0, 1)");
        usage();
    }
    // Quick mode (CI) runs the one size the acceptance gate cares about;
    // the full run brackets it. Same per-size procedure and JSON schema,
    // so `--check` matches quick runs against the committed full
    // baseline by `n`.
    let sizes: Vec<usize> = if quick { vec![120] } else { vec![60, 120, 240] };
    let reps = 3usize;
    let family = ScenarioFamily::from_label("heavy-tail").expect("registered family");
    let request = SolveRequest::new(Objective::MinPeriod).strategy(Strategy::BestOfAll);

    let mut case_entries: Vec<String> = Vec::new();
    // (n, fault label, speedup, period_ratio) in emission order.
    let mut ours: Vec<(usize, &'static str, f64, f64)> = Vec::new();
    for &n in &sizes {
        // Half as many processors as stages: spare capacity, so a lost
        // processor is survivable and a re-plan has somewhere to go.
        let p = (n / 2).max(2);
        let gen = ScenarioGenerator::new(ScenarioParams::preset(family, n, p));
        let (app, pf) = gen.instance(2007, 0);
        let prepared = PreparedInstance::new(app.clone(), pf.clone());
        let mut ws = SolveWorkspace::new();
        let incumbent = prepared
            .solve_in(&request, &mut ws)
            .unwrap_or_else(|e| {
                eprintln!("incumbent solve failed: {e}");
                std::process::exit(1);
            })
            .result;
        // Two victims, two stories. The *straggler* (slowest processor)
        // drifting is the common fleet event: it sits outside the
        // speed-order prefix the recorded trajectories consulted, so the
        // warm path re-solves on carried artifacts while scratch
        // re-records everything — the reuse case `apply_in` exists for.
        // The *bottleneck* (processor owning the longest cycle)
        // fail-stopping is the hard case: the artifacts consulted the
        // lost processor, reuse is structurally impossible, and the warm
        // path must merely not lose to scratch.
        let bottleneck = {
            let cm = prepared.cost_model();
            let (mut best_j, mut best) = (0usize, f64::NEG_INFINITY);
            for j in 0..incumbent.mapping.n_intervals() {
                let c = cm.cycle_time(&incumbent.mapping, j);
                if c > best {
                    best = c;
                    best_j = j;
                }
            }
            incumbent.mapping.proc_of(best_j)
        };
        let straggler = *prepared
            .platform()
            .procs_by_speed_desc()
            .last()
            .expect("platform has processors");

        for (label, fault) in [
            (
                "drift-straggler",
                DetectedFault::SpeedDrift {
                    proc: straggler,
                    factor: 0.5,
                },
            ),
            (
                "loss-bottleneck",
                DetectedFault::ProcessorLoss { proc: bottleneck },
            ),
        ] {
            let mut warm_secs = f64::INFINITY;
            let mut scratch_secs = f64::INFINITY;
            let mut report = None;
            let mut scratch_bits = None;
            for _ in 0..reps {
                // Warm path: the incumbent's prepared instance and
                // workspace carry their artifacts through `apply_in`.
                let t0 = Instant::now();
                let (_, rep) = replan(&prepared, &incumbent.mapping, &fault, &request, &mut ws)
                    .unwrap_or_else(|e| {
                        eprintln!("replan failed: {e}");
                        std::process::exit(1);
                    });
                warm_secs = warm_secs.min(t0.elapsed().as_secs_f64());

                // Scratch path: same degraded instance, but a full
                // preparation and a cold workspace.
                let delta = fault.to_delta(prepared.platform()).expect("valid fault");
                let t0 = Instant::now();
                let (app2, pf2) = delta.apply_to(&app, &pf).unwrap_or_else(|e| {
                    eprintln!("delta rejected: {e}");
                    std::process::exit(1);
                });
                let cold = PreparedInstance::new(app2, pf2);
                let mut cold_ws = SolveWorkspace::new();
                let scratch = cold
                    .solve_in(&request, &mut cold_ws)
                    .unwrap_or_else(|e| {
                        eprintln!("scratch solve failed: {e}");
                        std::process::exit(1);
                    })
                    .result;
                scratch_secs = scratch_secs.min(t0.elapsed().as_secs_f64());

                assert_eq!(
                    rep.resolved_period.to_bits(),
                    scratch.period.to_bits(),
                    "warm replan must match the scratch solve bit for bit (n={n}, {label})"
                );
                scratch_bits = Some(scratch.period.to_bits());
                report = Some(rep);
            }
            let rep = report.expect("at least one rep ran");
            let _ = scratch_bits;
            let speedup = scratch_secs / warm_secs;
            let period_ratio = rep.period_after / rep.period_nominal;
            let rideout = rep.period_before / rep.period_nominal;
            let rideout_cell = if rideout.is_finite() {
                format!("{rideout:.6}")
            } else {
                "\"inf\"".to_string()
            };
            eprintln!(
                "n={n:<4} p={p:<4} fault={label:<11} warm_ms={:<9.3} scratch_ms={:<9.3} \
                 speedup={speedup:<7.2} period_ratio={period_ratio:.4} migration={}",
                warm_secs * 1e3,
                scratch_secs * 1e3,
                rep.migration_distance
            );
            case_entries.push(format!(
                "{{\"n\": {n}, \"p\": {p}, \"fault\": \"{label}\", \
                 \"warm_ms\": {:.3}, \"scratch_ms\": {:.3}, \"speedup\": {speedup:.2}, \
                 \"period_ratio\": {period_ratio:.6}, \"rideout_ratio\": {rideout_cell}, \
                 \"migration\": {}, \"adopted\": {}}}",
                warm_secs * 1e3,
                scratch_secs * 1e3,
                rep.migration_distance,
                rep.adopted
            ));
            ours.push((n, label, speedup, period_ratio));
        }
    }

    let mut json = String::from("{\n  \"bench\": \"failover\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"family\": \"heavy-tail\", \"reps\": {reps}, \
         \"strategy\": \"best-of-all\"}},\n"
    ));
    json.push_str("  \"cases\": [");
    json.push_str(&case_entries.join(", "));
    json.push_str("]\n}\n");

    match &out_path {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    // Regression gate. Timing: each case's warm-vs-scratch speedup must
    // stay within `tolerance` of the baseline's same-(n, position) case,
    // and may never drop below 1.0 outright — the warm path losing to a
    // cold re-prepare means the reuse story broke. Quality: the
    // post-fault period ratio is deterministic, so it must match the
    // baseline exactly (same binary, same arithmetic).
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let base_n = extract_f64_all(&baseline, "n");
        let base_speedup = extract_f64_all(&baseline, "speedup");
        let base_ratio = extract_f64_all(&baseline, "period_ratio");
        if base_n.len() != base_speedup.len() || base_n.len() != base_ratio.len() {
            eprintln!("baseline {path} is malformed");
            std::process::exit(1);
        }
        let mut used = vec![false; base_n.len()];
        for (n, label, speedup, period_ratio) in &ours {
            // Cases are emitted in a fixed (size × fault) order in both
            // runs; match by first unused entry with the same n.
            let Some(idx) = (0..base_n.len()).find(|&i| !used[i] && base_n[i] == *n as f64) else {
                eprintln!("baseline {path} has no entry for n={n} ({label})");
                std::process::exit(1);
            };
            used[idx] = true;
            // The straggler-drift case is the reuse story: the warm path
            // must beat scratch outright. The bottleneck-loss case
            // cannot reuse trajectories (they consulted the lost
            // processor), so it is held to "not meaningfully slower".
            let hard_floor = if *label == "drift-straggler" {
                1.0
            } else {
                0.7
            };
            let floor = (base_speedup[idx] * (1.0 - tolerance)).max(hard_floor);
            if *speedup < floor {
                eprintln!(
                    "REGRESSION: n={n} {label} warm-vs-scratch speedup {speedup:.2} < {floor:.2} \
                     (baseline {:.2} - {:.0}%)",
                    base_speedup[idx],
                    tolerance * 100.0
                );
                std::process::exit(1);
            }
            // Compare at the JSON's emitted precision: the quantity is
            // deterministic, but the baseline only stores six decimals.
            let emitted: f64 = format!("{period_ratio:.6}").parse().expect("formatted f64");
            if emitted != base_ratio[idx] {
                eprintln!(
                    "REGRESSION: n={n} {label} post-fault period ratio {period_ratio:.6} != \
                     baseline {:.6} (deterministic quantity drifted)",
                    base_ratio[idx]
                );
                std::process::exit(1);
            }
            eprintln!("ok: n={n} {label} speedup {speedup:.2} >= {floor:.2}, period ratio matches");
        }
    }
    std::process::exit(0);
}

/// `bench-tenant`: measure the multi-tenant co-scheduler. The quality
/// section runs the heuristic partitioner and the exact oracle over a
/// fixed grid of tenant-zoo cases (every family x every objective) and
/// reports, per (family, objective), the mean exact-vs-heuristic score
/// ratio — 1.0 means the heuristic found an optimal partition on every
/// case. The grid is deterministic and identical in `--quick` and full
/// runs, so `--check` compares like against like; only the throughput
/// section (informational: `solve_tenant_batch` jobs/sec by thread
/// count) shrinks under `--quick`. `--check FILE` gates every
/// `mean_ratio` against a committed baseline (`BENCH_tenant.json` by
/// convention): a drop of more than `--tolerance` (default 0.05) fails.
fn run_bench_tenant(mut args: impl Iterator<Item = String>) -> ! {
    use pipeline_workflows::core::tenancy::{
        CoSchedOptions, PartitionObjective, Tenant, TenantSet,
    };
    use pipeline_workflows::experiments::{solve_tenant_batch, ShardOptions, TenantJob};
    use pipeline_workflows::model::scenario::{TenantFamily, TenantScenarioGenerator};
    use pipeline_workflows::model::util::{approx_eq, approx_le};
    use std::time::Instant;

    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.05f64;
    let mut quick = false;
    while let Some(flag) = args.next() {
        if flag == "--quick" {
            quick = true;
            continue;
        }
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--check" => check_path = Some(value),
            "--tolerance" => tolerance = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("--tolerance must be in [0, 1)");
        usage();
    }

    // Small enough for the exact oracle (K^p assignments), big enough
    // that the heuristic has real choices to get wrong.
    let cases = [(2usize, 5usize, 4usize), (3, 6, 5)]; // (K, n_base, p)
    let build_set = |family: TenantFamily, tenants: usize, n_base: usize, p: usize| {
        let gen = TenantScenarioGenerator::new(family, tenants, n_base, p);
        let scenario = gen.scenario(2007, 0);
        let ts = scenario
            .tenants
            .iter()
            .map(|spec| {
                let prepared = Arc::new(PreparedInstance::new(
                    spec.app.clone(),
                    scenario.platform.clone(),
                ));
                let mut tenant = Tenant::new(prepared).weight(spec.weight);
                if let Some(slo) = spec.slo {
                    tenant = tenant.slo(slo);
                }
                tenant
            })
            .collect();
        Arc::new(TenantSet::new(ts).unwrap_or_else(|e| {
            eprintln!("tenant zoo produced an invalid set: {e}");
            std::process::exit(1);
        }))
    };

    // Quality: heuristic vs exact on every (family, objective), mean
    // score ratio over the case grid. The comparison mirrors the
    // lexicographic (score, tiebreak) order the co-scheduler optimizes:
    // equal scores fall through to the tiebreak ratio.
    let opts = CoSchedOptions::default();
    let mut ws = SolveWorkspace::new();
    let mut quality_entries: Vec<String> = Vec::new();
    let mut ours: Vec<(String, f64)> = Vec::new();
    for family in TenantFamily::ALL {
        for objective in PartitionObjective::ALL {
            let mut ratio_sum = 0.0f64;
            let mut front_hv_sum = 0.0f64;
            for &(k, n_base, p) in &cases {
                let set = build_set(family, k, n_base, p);
                let heur = set
                    .co_schedule(objective, &opts, &mut ws)
                    .unwrap_or_else(|e| {
                        eprintln!("heuristic co-schedule failed ({family}/{objective}): {e}");
                        std::process::exit(1);
                    });
                let exact = set
                    .co_schedule_exact(objective, &opts, &mut ws)
                    .unwrap_or_else(|e| {
                        eprintln!("exact co-schedule failed ({family}/{objective}): {e}");
                        std::process::exit(1);
                    });
                let ratio = if approx_eq(heur.score, exact.score) {
                    if approx_le(heur.tiebreak, exact.tiebreak) || heur.tiebreak == 0.0 {
                        1.0
                    } else {
                        exact.tiebreak / heur.tiebreak
                    }
                } else {
                    exact.score / heur.score
                };
                ratio_sum += ratio;
                // Informational: mean per-tenant front hypervolume on the
                // heuristic partition, referenced at twice each front's
                // own extent (scale-free across heterogeneous tenants).
                let partition: Vec<Vec<usize>> =
                    heur.tenants.iter().map(|t| t.procs.clone()).collect();
                let fronts = set
                    .tenant_fronts(&partition, &opts, &mut ws)
                    .unwrap_or_else(|e| {
                        eprintln!("tenant_fronts failed ({family}/{objective}): {e}");
                        std::process::exit(1);
                    });
                let mut hv = 0.0f64;
                for front in &fronts {
                    let ref_p = front.iter().map(|(p, _, _)| p).fold(0.0f64, f64::max) * 2.0;
                    let ref_l = front.iter().map(|(_, l, _)| l).fold(0.0f64, f64::max) * 2.0;
                    hv += front.hypervolume(ref_p, ref_l);
                }
                front_hv_sum += hv / fronts.len() as f64;
            }
            let mean_ratio = ratio_sum / cases.len() as f64;
            let mean_front_hv = front_hv_sum / cases.len() as f64;
            eprintln!(
                "family={:<14} objective={:<12} mean_ratio={mean_ratio:.4} \
                 mean_front_hv={mean_front_hv:.4}",
                family.label(),
                objective.label()
            );
            quality_entries.push(format!(
                "{{\"family\": \"{}\", \"objective\": \"{}\", \"mean_ratio\": {mean_ratio:.4}, \
                 \"mean_front_hv\": {mean_front_hv:.4}}}",
                family.label(),
                objective.label()
            ));
            ours.push((
                format!("{}/{}", family.label(), objective.label()),
                mean_ratio,
            ));
        }
    }

    // Throughput (informational, not gated): the same co-schedules as
    // batch jobs through the sharded engine, repeated enough to time.
    let reps = if quick { 2usize } else { 8 };
    let make_jobs = || -> Vec<TenantJob> {
        let mut jobs = Vec::new();
        for _ in 0..reps {
            for family in TenantFamily::ALL {
                for &(k, n_base, p) in &cases {
                    let set = build_set(family, k, n_base, p);
                    for objective in PartitionObjective::ALL {
                        jobs.push(TenantJob::new(Arc::clone(&set), objective));
                    }
                }
            }
        }
        jobs
    };
    let mut throughput_entries: Vec<String> = Vec::new();
    for threads in [1usize, 2, 4] {
        let jobs = make_jobs();
        let n_jobs = jobs.len();
        let t0 = Instant::now();
        let answers = solve_tenant_batch(jobs, ShardOptions::with_threads(threads));
        let secs = t0.elapsed().as_secs_f64();
        let failures = answers.iter().filter(|a| a.is_err()).count();
        if failures > 0 {
            eprintln!("{failures} tenant batch jobs failed");
            std::process::exit(1);
        }
        let jps = n_jobs as f64 / secs;
        eprintln!("threads={threads} jobs={n_jobs} jobs_per_sec={jps:.1}");
        throughput_entries.push(format!(
            "{{\"threads\": {threads}, \"jobs\": {n_jobs}, \"jobs_per_sec\": {jps:.1}}}"
        ));
    }

    let mut json = String::from("{\n  \"bench\": \"tenant\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"quick\": {quick}, \"families\": {}, \"objectives\": {}, \
         \"cases\": {}, \"throughput_reps\": {reps}}},\n",
        TenantFamily::ALL.len(),
        PartitionObjective::ALL.len(),
        cases.len()
    ));
    json.push_str("  \"quality\": [");
    json.push_str(&quality_entries.join(", "));
    json.push_str("],\n  \"throughput\": [");
    json.push_str(&throughput_entries.join(", "));
    json.push_str("]\n}\n");

    match &out_path {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    // Regression gate: every (family, objective) mean ratio must stay
    // within `tolerance` of the committed baseline. The quality grid is
    // identical in quick and full runs, so entries match by position.
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let base_ratios = extract_f64_all(&baseline, "mean_ratio");
        if base_ratios.len() != ours.len() {
            eprintln!(
                "baseline {path} is malformed: {} mean_ratio entries, expected {}",
                base_ratios.len(),
                ours.len()
            );
            std::process::exit(1);
        }
        for ((label, ratio), base) in ours.iter().zip(&base_ratios) {
            let floor = base - tolerance;
            if *ratio < floor {
                eprintln!(
                    "REGRESSION: {label} mean_ratio {ratio:.4} < {floor:.4} \
                     (baseline {base:.4} - {tolerance})"
                );
                std::process::exit(1);
            }
            eprintln!("ok: {label} mean_ratio {ratio:.4} >= {floor:.4}");
        }
    }
    std::process::exit(0);
}

fn run_sweep(mut args: impl Iterator<Item = String>) -> ! {
    let Some(which) = args.next() else { usage() };
    let mut stages: Option<usize> = None;
    let mut procs: Option<usize> = None;
    let mut instances = 50usize;
    let mut grid = 20usize;
    let mut threads = 1usize;
    let mut seed = 2007u64;
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--stages" => stages = Some(value.parse().unwrap_or_else(|_| usage())),
            "--procs" => procs = Some(value.parse().unwrap_or_else(|_| usage())),
            "--instances" => instances = value.parse().unwrap_or_else(|_| usage()),
            "--grid" => grid = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if threads < 1 || instances < 1 || grid < 2 {
        eprintln!("--threads and --instances must be >= 1, --grid >= 2");
        usage();
    }
    if stages == Some(0) || procs == Some(0) {
        eprintln!("--stages and --procs must be >= 1");
        usage();
    }
    let specs: Vec<_> = if which == "all" {
        scenario_zoo()
    } else {
        let Some(family) = ScenarioFamily::from_label(&which) else {
            eprintln!(
                "unknown family {which:?}; registered: {}",
                ScenarioFamily::ALL.map(|f| f.label()).join(", ")
            );
            std::process::exit(2);
        };
        scenario_zoo()
            .into_iter()
            .filter(|s| s.family == family)
            .collect()
    };
    println!(
        "{:<14} {:>4} {:>4} {:>9} {:>9} {:>9} {:>7} {:>8} {:>8}",
        "family", "n", "p", "P_single", "L_opt", "floor", "curves", "skipped", "ms"
    );
    for spec in specs {
        let mut params = spec.params();
        if let Some(n) = stages {
            params.n_stages = n;
        }
        if let Some(p) = procs {
            params.n_procs = p;
        }
        let t0 = std::time::Instant::now();
        let fam = run_scenario(&params, seed, instances, grid, threads);
        let ms = t0.elapsed().as_millis();
        println!(
            "{:<14} {:>4} {:>4} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>8} {:>8}",
            spec.family.label(),
            params.n_stages,
            params.n_procs,
            fam.stats.mean_p_init,
            fam.stats.mean_l_opt,
            fam.stats.mean_best_floor,
            fam.series.len(),
            fam.skipped.len(),
            ms
        );
        if !fam.skipped.is_empty() {
            println!(
                "{:<14} skipped (platform class rejects them): {}",
                "",
                fam.skipped
                    .iter()
                    .map(|k| k.table_name())
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
        // Front quality vs the exact Pareto front, computed whenever n
        // is within the exact solver's Auto cutoff: hypervolume ratio
        // (1 = the heuristic recovers the whole exact front) and mean
        // relative distance to the front (0 = every point optimal).
        if !fam.quality.is_empty() {
            println!(
                "{:<14} front quality vs exact (hv ratio/distance): {}",
                "",
                fam.quality
                    .iter()
                    .map(|q| format!(
                        "{} {:.3}/{:.3}",
                        q.kind.table_name(),
                        q.hypervolume_ratio,
                        q.distance
                    ))
                    .collect::<Vec<_>>()
                    .join("  ")
            );
        }
    }
    std::process::exit(0);
}

/// Peak resident set size in kB (`VmHWM` from `/proc/self/status`), or
/// `None` where procfs is unavailable — the cheap RSS proxy
/// `bench-sweep` reports.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `bench-sweep`: record the sweep/batch-throughput baseline as one JSON
/// object (see the module docs).
fn run_bench_sweep(mut args: impl Iterator<Item = String>) -> ! {
    use pipeline_workflows::core::Objective;
    use pipeline_workflows::experiments::{solve_batch, BatchJob, ShardOptions};
    use pipeline_workflows::model::scenario::ScenarioGenerator;
    use std::time::Instant;

    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut tolerance = 0.05f64;
    let mut sizes: Vec<usize> = vec![60, 120, 240];
    let mut instances = 10usize;
    let mut grid = 12usize;
    let mut batch_jobs = 200usize;
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--check" => check_path = Some(value),
            "--tolerance" => tolerance = value.parse().unwrap_or_else(|_| usage()),
            "--sizes" => {
                sizes = value
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--instances" => instances = value.parse().unwrap_or_else(|_| usage()),
            "--grid" => grid = value.parse().unwrap_or_else(|_| usage()),
            "--batch-jobs" => batch_jobs = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if sizes.is_empty() || sizes.iter().any(|&n| n < 4) || instances < 1 || grid < 2 {
        eprintln!("--sizes entries must be >= 4, --instances >= 1, --grid >= 2");
        usage();
    }
    if !(0.0..1.0).contains(&tolerance) {
        eprintln!("--tolerance must be in [0, 1)");
        usage();
    }

    let mut json = String::from("{\n  \"bench\": \"sweep\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"instances\": {instances}, \"grid\": {grid}, \"threads\": 1}},\n"
    ));

    // Full-zoo sweeps at each size: per-family wall time + skipped-solver
    // counts, and the aggregate bound-query throughput (instances ×
    // curves × grid points answered per second).
    json.push_str("  \"zoo\": [");
    for (si, &n) in sizes.iter().enumerate() {
        let p = (n / 2).max(2);
        let mut family_json = String::new();
        let mut queries = 0usize;
        let t_zoo = Instant::now();
        for (i, spec) in scenario_zoo().iter().enumerate() {
            let mut params = spec.params();
            params.n_stages = n;
            params.n_procs = p;
            let t0 = Instant::now();
            let fam = run_scenario(&params, 2007, instances, grid, 1);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            queries += instances * fam.series.len() * grid;
            if i > 0 {
                family_json.push_str(", ");
            }
            family_json.push_str(&format!(
                "\"{}\": {{\"ms\": {ms:.3}, \"curves\": {}, \"skipped_solvers\": {}}}",
                spec.family.label(),
                fam.series.len(),
                fam.skipped.len()
            ));
        }
        let total = t_zoo.elapsed().as_secs_f64();
        if si > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!(
            "{{\"n\": {n}, \"p\": {p}, \"total_ms\": {:.3}, \
             \"bound_queries_per_sec\": {:.0}, \"families\": {{{family_json}}}}}",
            total * 1e3,
            queries as f64 / total
        ));
    }
    json.push_str("],\n");

    // Front quality vs the exact Pareto front, at a size the exact
    // solver answers interactively (n = 12): per comm-homogeneous
    // family × heuristic, mean hypervolume ratio and mean relative
    // distance to the exact front. Deterministic (exact fronts +
    // instance-order merges) and computed at a **fixed** instance/grid
    // config — independent of --instances/--grid — so `--check`
    // compares like against like between smoke runs and the committed
    // baseline.
    let mut quality_scores: Vec<(String, f64, f64)> = Vec::new();
    json.push_str("  \"front_quality\": [");
    {
        let (qn, qp, qinstances, qgrid) = (12usize, 8usize, 10usize, 12usize);
        let mut first = true;
        for spec in scenario_zoo() {
            if !spec.family.comm_homogeneous() {
                continue;
            }
            let mut params = spec.params();
            params.n_stages = qn;
            params.n_procs = qp;
            let fam = run_scenario(&params, 2007, qinstances, qgrid, 1);
            for q in &fam.quality {
                if !first {
                    json.push_str(", ");
                }
                first = false;
                json.push_str(&format!(
                    "{{\"family\": \"{}\", \"heuristic\": \"{}\", \
                     \"hypervolume_ratio\": {:.4}, \"distance\": {:.4}, \"n_scored\": {}}}",
                    spec.family.label(),
                    q.kind.table_name(),
                    q.hypervolume_ratio,
                    q.distance,
                    q.n_scored
                ));
                quality_scores.push((
                    format!("{}/{}", spec.family.label(), q.kind.table_name()),
                    q.hypervolume_ratio,
                    q.distance,
                ));
            }
        }
    }
    json.push_str("],\n");

    // solve_batch throughput: the same job stream answered with a fresh
    // workspace per item (the `solve()` path) vs one workspace reused
    // across all items (`solve_batch` on one shard). Fresh prepared
    // instances per variant keep both cold-cache.
    {
        // One fresh instance per job: every item pays its preparation
        // (trajectory recording + H4 floor), which is exactly the work
        // the reused workspace amortizes. Shared instances would answer
        // from the session caches and hide the difference.
        let make_jobs = || {
            let gen = ScenarioGenerator::new(
                pipeline_workflows::model::scenario::ScenarioFamily::E2.params(60, 30),
            );
            (0..batch_jobs)
                .map(|j| {
                    let (app, pf) = gen.instance(99, j as u64);
                    let inst = Arc::new(PreparedInstance::new(app, pf));
                    let bound = inst.single_proc_period()
                        * (0.4 + 0.5 * (j as f64 / batch_jobs.max(1) as f64));
                    BatchJob::new(
                        inst,
                        SolveRequest::new(Objective::MinLatencyForPeriod(bound)),
                    )
                })
                .collect::<Vec<_>>()
        };
        let fresh_jobs = make_jobs();
        let t0 = Instant::now();
        let fresh_answers: usize = fresh_jobs
            .iter()
            .filter(|job| job.instance.solve(&job.request).is_ok())
            .count();
        let fresh_secs = t0.elapsed().as_secs_f64();
        let reused_jobs = make_jobs();
        let t0 = Instant::now();
        let reused_answers = solve_batch(reused_jobs, ShardOptions::with_threads(1))
            .into_iter()
            .filter(Result::is_ok)
            .count();
        let reused_secs = t0.elapsed().as_secs_f64();
        assert_eq!(fresh_answers, reused_answers, "variants must agree");
        json.push_str(&format!(
            "  \"solve_batch\": {{\"jobs\": {batch_jobs}, \"answered\": {fresh_answers}, \
             \"fresh_workspace_items_per_sec\": {:.0}, \
             \"reused_workspace_items_per_sec\": {:.0}}},\n",
            batch_jobs as f64 / fresh_secs,
            batch_jobs as f64 / reused_secs
        ));
    }

    match peak_rss_kb() {
        Some(kb) => json.push_str(&format!("  \"peak_rss_kb\": {kb}\n")),
        None => json.push_str("  \"peak_rss_kb\": null\n"),
    }
    json.push_str("}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    // Regression gate: per family × heuristic, the hypervolume ratio
    // must not drop — and the distance must not grow — by more than
    // `tolerance` relative to the committed baseline. The quality grid
    // is size-independent, so entries match by position.
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let base_hv = extract_f64_all(&baseline, "hypervolume_ratio");
        let base_dist = extract_f64_all(&baseline, "distance");
        if base_hv.len() != quality_scores.len() || base_dist.len() != quality_scores.len() {
            eprintln!(
                "baseline {path} is malformed: {}/{} quality entries, expected {}",
                base_hv.len(),
                base_dist.len(),
                quality_scores.len()
            );
            std::process::exit(1);
        }
        for ((label, hv, dist), (bhv, bdist)) in
            quality_scores.iter().zip(base_hv.iter().zip(&base_dist))
        {
            if *hv < bhv - tolerance {
                eprintln!(
                    "REGRESSION: {label} hypervolume_ratio {hv:.4} < {:.4} \
                     (baseline {bhv:.4} - {tolerance})",
                    bhv - tolerance
                );
                std::process::exit(1);
            }
            if *dist > bdist + tolerance {
                eprintln!(
                    "REGRESSION: {label} distance {dist:.4} > {:.4} \
                     (baseline {bdist:.4} + {tolerance})",
                    bdist + tolerance
                );
                std::process::exit(1);
            }
            eprintln!("ok: {label} hv {hv:.4} dist {dist:.4}");
        }
    }
    std::process::exit(0);
}

/// `bench-kernel`: record the kernel perf baseline as one JSON object.
fn run_bench_kernel(mut args: impl Iterator<Item = String>) -> ! {
    use pipeline_workflows::core::exact;
    use pipeline_workflows::core::trajectory::{fixed_period_trajectory, TrajectoryKind};
    use pipeline_workflows::core::{sp_bi_p, SpBiPOptions};
    use pipeline_workflows::experiments::{
        exact_min_period_sharded, exact_pareto_front_sharded, ShardOptions,
    };
    use pipeline_workflows::model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};
    use pipeline_workflows::model::{CostModel, Platform};
    use std::time::Instant;

    let mut out_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut exact_n_max = 14usize;
    let mut instances = 3usize;
    let mut threads = 1usize;
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--check" => check_path = Some(value),
            "--exact-n" => exact_n_max = value.parse().unwrap_or_else(|_| usage()),
            "--instances" => instances = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if instances < 1 || threads < 1 {
        eprintln!("--instances and --threads must be >= 1");
        usage();
    }
    if !(2..=exact::MAX_STAGES).contains(&exact_n_max) {
        eprintln!(
            "--exact-n must be in 2..={} (the enumeration guard)",
            exact::MAX_STAGES
        );
        usage();
    }
    let mut json = String::from("{\n  \"bench\": \"kernel\",\n");

    // Sweep wall-time per scenario family (sharded engine, 1 thread —
    // the per-item kernel cost is what this baseline tracks).
    json.push_str("  \"sweep_ms\": {");
    for (i, spec) in scenario_zoo().iter().enumerate() {
        let params = spec.params();
        let t0 = Instant::now();
        let fam = run_scenario(&params, 2007, instances, 10, 1);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!(
            "\"{}\": {{\"ms\": {:.3}, \"curves\": {}}}",
            spec.family.label(),
            ms,
            fam.series.len()
        ));
    }
    json.push_str("},\n");

    // Exact solver at growing n up to --exact-n: min-period and the
    // full front, through the sharded entry points (bit-identical at
    // every --threads value, so `--check` gates the same numbers
    // regardless of parallelism). Sizes step by 2 from 10 (or measure
    // just --exact-n when it is smaller), so raising the flag really
    // measures more. Zoo rows keep the historical p = 6 shape up to
    // n = 16; past that the frontier rows move to the paper's p = 16
    // cluster scale.
    let mut exact_sizes: Vec<usize> = if exact_n_max < 10 {
        vec![exact_n_max]
    } else {
        (10..=exact_n_max).step_by(2).collect()
    };
    if exact_sizes.last() != Some(&exact_n_max) {
        exact_sizes.push(exact_n_max); // odd --exact-n: measure it too
    }
    let shard_opts = ShardOptions::with_threads(threads);
    // (row id, min_period bits) of every exact row, for the `--check`
    // bit-wise gate.
    let mut exact_rows: Vec<(String, String)> = Vec::new();
    let emit_exact_row = |json: &mut String,
                          rows: &mut Vec<(String, String)>,
                          first: &mut bool,
                          id: String,
                          cm: &CostModel<'_>,
                          n: usize,
                          p: usize| {
        let t0 = Instant::now();
        let (p_opt, _) = exact_min_period_sharded(cm, shard_opts);
        let min_period_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let front = exact_pareto_front_sharded(cm, shard_opts);
        let front_ms = t0.elapsed().as_secs_f64() * 1e3;
        if !*first {
            json.push_str(", ");
        }
        *first = false;
        let bits = format!("{:016x}", p_opt.to_bits());
        json.push_str(&format!(
            "{{\"id\": \"{id}\", \"n\": {n}, \"p\": {p}, \"min_period\": {p_opt:.6}, \
             \"min_period_bits\": \"{bits}\", \"min_period_ms\": {min_period_ms:.3}, \
             \"front_ms\": {front_ms:.3}, \"front_points\": {}}}",
            front.len()
        ));
        rows.push((id, bits));
    };
    json.push_str("  \"exact\": [");
    let mut first = true;
    for &n in &exact_sizes {
        let p = if n <= 16 { 6usize } else { 16 };
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, n, p));
        let (app, pf) = gen.instance(1, 0);
        let cm = CostModel::new(&app, &pf);
        emit_exact_row(
            &mut json,
            &mut exact_rows,
            &mut first,
            format!("zoo-n{n}-p{p}"),
            &cm,
            n,
            p,
        );
    }
    json.push_str("],\n");

    // The same frontier on a uniform-speed cluster (the paper's
    // setting): identical speeds collapse the dominance DP's mask space
    // to stage-count prefixes, which is what pushes the exact front to
    // n = 24-30 at p = 16 in well under a second.
    json.push_str("  \"exact_uniform\": [");
    let mut first = true;
    for n in [20usize, 24, 28, 30] {
        if n > exact_n_max.max(16) {
            continue;
        }
        let p = 16usize;
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E1, n, p));
        let (app, _) = gen.instance(1, 0);
        let pf = Platform::comm_homogeneous(vec![10.0; p], 10.0).expect("valid platform");
        let cm = CostModel::new(&app, &pf);
        emit_exact_row(
            &mut json,
            &mut exact_rows,
            &mut first,
            format!("uniform-n{n}-p{p}"),
            &cm,
            n,
            p,
        );
    }
    json.push_str("],\n");

    // Split-step throughput: H1 trajectories on a large instance.
    {
        let (n, p) = (240usize, 120usize);
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E1, n, p));
        let (app, pf) = gen.instance(3, 0);
        let cm = CostModel::new(&app, &pf);
        let steps = fixed_period_trajectory(&cm, TrajectoryKind::SplitMono).len() - 1;
        let runs = 50usize;
        let t0 = Instant::now();
        for _ in 0..runs {
            std::hint::black_box(fixed_period_trajectory(&cm, TrajectoryKind::SplitMono));
        }
        let secs = t0.elapsed().as_secs_f64();
        json.push_str(&format!(
            "  \"split_steps\": {{\"n\": {n}, \"p\": {p}, \"steps_per_run\": {steps}, \
             \"runs\": {runs}, \"steps_per_sec\": {:.0}}},\n",
            (steps * runs) as f64 / secs
        ));
    }

    // H3's memoized binary search on a mid-size instance.
    {
        let (n, p) = (120usize, 60usize);
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, n, p));
        let (app, pf) = gen.instance(5, 0);
        let cm = CostModel::new(&app, &pf);
        let target = 0.5 * cm.single_proc_period();
        let t0 = Instant::now();
        let runs = 20usize;
        for _ in 0..runs {
            std::hint::black_box(sp_bi_p(&cm, target, SpBiPOptions::default()));
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / runs as f64;
        json.push_str(&format!(
            "  \"sp_bi_p\": {{\"n\": {n}, \"p\": {p}, \"ms_per_solve\": {ms:.3}}}\n"
        ));
    }
    json.push_str("}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }

    // Regression gate: every exact `min_period` this run produced must
    // be **bit-identical** to the committed baseline's value for the
    // same row id — optimality is not a tolerance question. Rows the
    // baseline does not have (deeper --exact-n than it was recorded at)
    // are reported but cannot fail; at least one row must match so the
    // gate never passes vacuously.
    if let Some(path) = check_path {
        let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read baseline {path}: {e}");
            std::process::exit(1);
        });
        let mut gated = 0usize;
        for (id, bits) in &exact_rows {
            match extract_row_bits(&baseline, id) {
                Some(base_bits) if base_bits == *bits => {
                    eprintln!("ok: {id} min_period bits {bits}");
                    gated += 1;
                }
                Some(base_bits) => {
                    eprintln!(
                        "REGRESSION: {id} min_period bits {bits} != baseline {base_bits} \
                         (exact values must be bit-identical)"
                    );
                    std::process::exit(1);
                }
                None => eprintln!("new row (not in baseline): {id}"),
            }
        }
        if gated == 0 {
            eprintln!("baseline {path} gated no rows — refusing a vacuous pass");
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else { usage() };
    if path == "--help" || path == "-h" {
        usage();
    }
    if path == "--sweep" {
        run_sweep(args);
    }
    if path == "solve" {
        run_service(args);
    }
    if path == "serve" {
        run_serve(args);
    }
    if path == "load" {
        run_load_cmd(args);
    }
    if path == "bench-serve" {
        run_bench_serve(args);
    }
    if path == "bench-delta" {
        run_bench_delta(args);
    }
    if path == "bench-tenant" {
        run_bench_tenant(args);
    }
    if path == "bench-kernel" {
        run_bench_kernel(args);
    }
    if path == "bench-sweep" {
        run_bench_sweep(args);
    }
    if path == "chaos" {
        run_chaos(args);
    }
    if path == "bench-failover" {
        run_bench_failover(args);
    }
    let mut objective: Option<Objective> = None;
    let mut strategy = Strategy::Auto;
    let mut simulate: Option<usize> = None;
    let mut gantt = false;
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        match flag.as_str() {
            "--period" => {
                objective = Some(Objective::MinLatencyForPeriod(
                    value().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--latency" => {
                objective = Some(Objective::MinPeriodForLatency(
                    value().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--min-period" => objective = Some(Objective::MinPeriod),
            "--min-latency" => objective = Some(Objective::MinLatency),
            "--pareto-front" => objective = Some(Objective::ParetoFront),
            "--heuristic" => strategy = parse_strategy(&value()),
            "--simulate" => simulate = Some(value().parse().unwrap_or_else(|_| usage())),
            "--gantt" => gantt = true,
            _ => usage(),
        }
    }
    let objective = objective.unwrap_or(Objective::MinPeriod);

    let prepared = load_instance(&path);
    let cm = prepared.cost_model();
    println!(
        "instance: {} stages (total work {:.2}), {} processors",
        prepared.app().n_stages(),
        prepared.app().total_work(),
        prepared.platform().n_procs()
    );
    println!(
        "landmarks: L_opt {:.4}, single-processor period {:.4}",
        prepared.optimal_latency(),
        prepared.single_proc_period()
    );

    let request = Scheduler::new().strategy(strategy).request(objective);
    let report = match prepared.solve(&request) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cannot answer {objective:?}: {err}");
            std::process::exit(1);
        }
    };
    if let Some(front) = &report.front {
        println!("\nPareto front ({} points):", front.len());
        println!("{:>12} {:>12}  solver", "period", "latency");
        for (period, latency, solver) in front.iter() {
            println!("{period:>12.4} {latency:>12.4}  {}", solver.label());
        }
    }
    println!("\nsolver:  {}", report.solver.label());
    println!("mapping: {}", report.result.mapping);
    println!("period:  {:.4}", report.result.period);
    println!("latency: {:.4}", report.result.latency);
    if !report.result.feasible {
        println!("WARNING: the requested constraint was NOT met; best effort shown.");
    }

    if let Some(n) = simulate {
        let out = PipelineSim::new(
            &cm,
            &report.result.mapping,
            SimConfig {
                input: InputPolicy::Saturating,
                record_trace: gantt,
            },
        )
        .run(n.max(1));
        println!("\nsimulated {n} data sets (saturating input):");
        if let Some(sp) = out.report.steady_period() {
            println!("  steady period: {sp:.4}");
        }
        println!("  max latency:   {:.4}", out.report.max_latency());
        for &u in report.result.mapping.procs() {
            println!(
                "  P{u} utilization: {:.1}%",
                100.0 * out.report.utilization(u)
            );
        }
        if gantt {
            let horizon = out.report.makespan.min(report.result.period * 8.0);
            let visible: Vec<_> = out
                .trace
                .iter()
                .copied()
                .filter(|e| e.start < horizon)
                .collect();
            println!(
                "\n{}",
                Gantt::default().render(&visible, report.result.mapping.procs(), horizon)
            );
        }
    }
}
