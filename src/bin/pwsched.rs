//! `pwsched` — schedule a pipeline instance from a file, or sweep the
//! scenario zoo.
//!
//! ```text
//! pwsched <instance-file> [--period BOUND | --latency BOUND | --min-period | --min-latency]
//!         [--heuristic h1|h2|h3|h4|h5|h6|h7|best|exact|auto]
//!         [--simulate N] [--gantt]
//! pwsched --sweep <family|all> [--stages N] [--procs P] [--instances K]
//!         [--grid G] [--threads T] [--seed S]
//! ```
//!
//! The instance file uses the `pipeline-instance v1` text format (see
//! `pipeline_model::io`). Default objective: `--min-period`; default
//! strategy: `auto` (exact for small instances, best-of-all heuristics
//! otherwise).
//!
//! `--sweep` runs the sharded sweep engine over one registered scenario
//! family (by stable label — `e1`…`e4`, `heavy-tail`, `two-tier`,
//! `comm-dominant`, `power-law`, `adversarial`) or over the whole zoo
//! (`all`), printing per-family landmark summaries. CI's smoke job uses
//! it to exercise every registered family on two threads.

use pipeline_workflows::core::{HeuristicKind, Objective, Scheduler, Strategy};
use pipeline_workflows::experiments::{run_scenario, scenario_zoo};
use pipeline_workflows::model::io::parse_instance;
use pipeline_workflows::model::scenario::ScenarioFamily;
use pipeline_workflows::model::CostModel;
use pipeline_workflows::sim::{Gantt, InputPolicy, PipelineSim, SimConfig};

fn usage() -> ! {
    eprintln!(
        "usage: pwsched <instance-file> \
         [--period B | --latency B | --min-period | --min-latency]\n\
         \t[--heuristic h1|h2|h3|h4|h5|h6|h7|best|exact|auto] [--simulate N] [--gantt]\n\
         \tpwsched --sweep <family|all> [--stages N] [--procs P] [--instances K]\n\
         \t[--grid G] [--threads T] [--seed S]"
    );
    std::process::exit(2);
}

fn parse_heuristic(s: &str) -> Strategy {
    match s.to_ascii_lowercase().as_str() {
        "h1" => Strategy::Heuristic(HeuristicKind::SpMonoP),
        "h2" => Strategy::Heuristic(HeuristicKind::ThreeExploMono),
        "h3" => Strategy::Heuristic(HeuristicKind::ThreeExploBi),
        "h4" => Strategy::Heuristic(HeuristicKind::SpBiP),
        "h5" => Strategy::Heuristic(HeuristicKind::SpMonoL),
        "h6" => Strategy::Heuristic(HeuristicKind::SpBiL),
        "h7" | "het" => Strategy::Heuristic(HeuristicKind::HeteroSplit),
        "best" => Strategy::BestOfAll,
        "exact" => Strategy::Exact,
        "auto" => Strategy::Auto,
        other => {
            eprintln!("unknown heuristic {other:?}");
            usage();
        }
    }
}

fn run_sweep(mut args: impl Iterator<Item = String>) -> ! {
    let Some(which) = args.next() else { usage() };
    let mut stages: Option<usize> = None;
    let mut procs: Option<usize> = None;
    let mut instances = 50usize;
    let mut grid = 20usize;
    let mut threads = 1usize;
    let mut seed = 2007u64;
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--stages" => stages = Some(value.parse().unwrap_or_else(|_| usage())),
            "--procs" => procs = Some(value.parse().unwrap_or_else(|_| usage())),
            "--instances" => instances = value.parse().unwrap_or_else(|_| usage()),
            "--grid" => grid = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if threads < 1 || instances < 1 || grid < 2 {
        eprintln!("--threads and --instances must be >= 1, --grid >= 2");
        usage();
    }
    if stages == Some(0) || procs == Some(0) {
        eprintln!("--stages and --procs must be >= 1");
        usage();
    }
    let specs: Vec<_> = if which == "all" {
        scenario_zoo()
    } else {
        let Some(family) = ScenarioFamily::from_label(&which) else {
            eprintln!(
                "unknown family {which:?}; registered: {}",
                ScenarioFamily::ALL.map(|f| f.label()).join(", ")
            );
            std::process::exit(2);
        };
        scenario_zoo()
            .into_iter()
            .filter(|s| s.family == family)
            .collect()
    };
    println!(
        "{:<14} {:>4} {:>4} {:>9} {:>9} {:>9} {:>7} {:>8}",
        "family", "n", "p", "P_single", "L_opt", "floor", "curves", "ms"
    );
    for spec in specs {
        let mut params = spec.params();
        if let Some(n) = stages {
            params.n_stages = n;
        }
        if let Some(p) = procs {
            params.n_procs = p;
        }
        let t0 = std::time::Instant::now();
        let fam = run_scenario(&params, seed, instances, grid, threads);
        let ms = t0.elapsed().as_millis();
        println!(
            "{:<14} {:>4} {:>4} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>8}",
            spec.family.label(),
            params.n_stages,
            params.n_procs,
            fam.stats.mean_p_init,
            fam.stats.mean_l_opt,
            fam.stats.mean_best_floor,
            fam.series.len(),
            ms
        );
    }
    std::process::exit(0);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else { usage() };
    if path == "--help" || path == "-h" {
        usage();
    }
    if path == "--sweep" {
        run_sweep(args);
    }
    let mut objective: Option<Objective> = None;
    let mut strategy = Strategy::Auto;
    let mut simulate: Option<usize> = None;
    let mut gantt = false;
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        match flag.as_str() {
            "--period" => {
                objective = Some(Objective::MinLatencyForPeriod(
                    value().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--latency" => {
                objective = Some(Objective::MinPeriodForLatency(
                    value().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--min-period" => objective = Some(Objective::MinPeriod),
            "--min-latency" => objective = Some(Objective::MinLatency),
            "--heuristic" => strategy = parse_heuristic(&value()),
            "--simulate" => simulate = Some(value().parse().unwrap_or_else(|_| usage())),
            "--gantt" => gantt = true,
            _ => usage(),
        }
    }
    let objective = objective.unwrap_or(Objective::MinPeriod);

    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let (app, platform) = parse_instance(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    let cm = CostModel::new(&app, &platform);
    println!(
        "instance: {} stages (total work {:.2}), {} processors",
        app.n_stages(),
        app.total_work(),
        platform.n_procs()
    );
    println!(
        "landmarks: L_opt {:.4}, single-processor period {:.4}",
        cm.optimal_latency(),
        cm.single_proc_period()
    );

    let solution = Scheduler::new()
        .strategy(strategy)
        .solve(&app, &platform, objective);
    let Some(sol) = solution else {
        eprintln!("objective {objective:?} is infeasible for the chosen strategy");
        std::process::exit(1);
    };
    println!("\nsolver:  {}", sol.solver);
    println!("mapping: {}", sol.result.mapping);
    println!("period:  {:.4}", sol.result.period);
    println!("latency: {:.4}", sol.result.latency);
    if !sol.result.feasible {
        println!("WARNING: the requested constraint was NOT met; best effort shown.");
    }

    if let Some(n) = simulate {
        let out = PipelineSim::new(
            &cm,
            &sol.result.mapping,
            SimConfig {
                input: InputPolicy::Saturating,
                record_trace: gantt,
            },
        )
        .run(n.max(1));
        println!("\nsimulated {n} data sets (saturating input):");
        if let Some(sp) = out.report.steady_period() {
            println!("  steady period: {sp:.4}");
        }
        println!("  max latency:   {:.4}", out.report.max_latency());
        for &u in sol.result.mapping.procs() {
            println!(
                "  P{u} utilization: {:.1}%",
                100.0 * out.report.utilization(u)
            );
        }
        if gantt {
            let horizon = out.report.makespan.min(sol.result.period * 8.0);
            let visible: Vec<_> = out
                .trace
                .iter()
                .copied()
                .filter(|e| e.start < horizon)
                .collect();
            println!(
                "\n{}",
                Gantt::default().render(&visible, sol.result.mapping.procs(), horizon)
            );
        }
    }
}
