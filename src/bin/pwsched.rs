//! `pwsched` — schedule a pipeline instance from a file, serve solve
//! requests over stdin, sweep the scenario zoo, or record a kernel perf
//! baseline.
//!
//! ```text
//! pwsched <instance-file> [--period BOUND | --latency BOUND | --min-period
//!         | --min-latency | --pareto-front]
//!         [--heuristic h1|h2|h3|h4|h5|h6|h7|best|exact|auto]
//!         [--simulate N] [--gantt]
//! pwsched solve <instance-file> --stdin
//! pwsched --sweep <family|all> [--stages N] [--procs P] [--instances K]
//!         [--grid G] [--threads T] [--seed S]
//! pwsched bench-kernel [--out FILE] [--exact-n N] [--instances K]
//! pwsched bench-sweep [--out FILE] [--sizes N1,N2,..] [--instances K]
//!         [--grid G] [--batch-jobs J]
//! ```
//!
//! `bench-kernel` measures the solver kernel — per-family sweep
//! wall-times, exact-solver v2 latencies at growing `n`, split-step
//! throughput, and H3's memoized binary search — and emits one JSON
//! object (`BENCH_kernel.json` by convention) so successive PRs have a
//! perf trajectory to compare against. CI runs it in release mode with
//! `--exact-n 16` under a timeout: a pruning regression in exact v2
//! shows up as a timeout, not a silent slowdown.
//!
//! `bench-sweep` measures the sweep/batch *throughput* path the
//! zero-allocation workspaces optimize: full-zoo sweeps at each `--sizes`
//! entry (per-family wall time, skipped-solver counts, bound-query
//! throughput), `solve_batch` items/sec with per-item fresh workspaces
//! vs one reused workspace, and a peak-RSS proxy (`VmHWM` on Linux).
//! Emits `BENCH_sweep.json` by convention; CI runs a small-`n` smoke
//! under timeout so an allocation regression fails loudly.
//!
//! The instance file uses the `pipeline-instance v1` text format, and the
//! service mode speaks the line-oriented request/report wire format —
//! both in `pipeline_model::io`. `pwsched solve <file> --stdin` prepares
//! the instance once, then answers one `solve …` request per input line
//! with one `report …` line (requests may override the instance with
//! `instance=<path>`; prepared instances are cached per path), so the
//! binary can sit behind a socket or pipe and serve traffic. Default
//! objective: `--min-period`; default strategy: `auto` (exact for small
//! instances, best-of-all heuristics otherwise).
//!
//! `--sweep` runs the sharded sweep engine over one registered scenario
//! family (by stable label — `e1`…`e4`, `heavy-tail`, `two-tier`,
//! `comm-dominant`, `power-law`, `adversarial`) or over the whole zoo
//! (`all`), printing per-family landmark summaries. CI's smoke job uses
//! it to exercise every registered family on two threads.

use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::sync::Arc;

use pipeline_workflows::core::service::{PreparedInstance, SolveRequest};
use pipeline_workflows::core::{Objective, Scheduler, Strategy};
use pipeline_workflows::experiments::{run_scenario, scenario_zoo};
use pipeline_workflows::model::io::{
    format_report, parse_instance, parse_request, WireFailure, WireReport,
};
use pipeline_workflows::model::scenario::ScenarioFamily;
use pipeline_workflows::sim::{Gantt, InputPolicy, PipelineSim, SimConfig};

fn usage() -> ! {
    eprintln!(
        "usage: pwsched <instance-file> \
         [--period B | --latency B | --min-period | --min-latency | --pareto-front]\n\
         \t[--heuristic h1|h2|h3|h4|h5|h6|h7|best|exact|auto] [--simulate N] [--gantt]\n\
         \tpwsched solve <instance-file> --stdin\n\
         \tpwsched --sweep <family|all> [--stages N] [--procs P] [--instances K]\n\
         \t[--grid G] [--threads T] [--seed S]\n\
         \tpwsched bench-kernel [--out FILE] [--exact-n N] [--instances K]\n\
         \tpwsched bench-sweep [--out FILE] [--sizes N1,N2,..] [--instances K]\n\
         \t[--grid G] [--batch-jobs J]"
    );
    std::process::exit(2);
}

fn parse_strategy(s: &str) -> Strategy {
    s.parse().unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    })
}

fn load_instance(path: &str) -> PreparedInstance {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    });
    let (app, platform) = parse_instance(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse {path}: {e}");
        std::process::exit(1);
    });
    PreparedInstance::new(app, platform)
}

/// Service mode: one prepared-instance session per referenced file, one
/// report line per request line.
fn run_service(mut args: impl Iterator<Item = String>) -> ! {
    let Some(default_path) = args.next() else {
        usage()
    };
    match args.next().as_deref() {
        Some("--stdin") => {}
        _ => usage(),
    }
    if args.next().is_some() {
        usage();
    }
    let mut instances: HashMap<String, Arc<PreparedInstance>> = HashMap::new();
    instances.insert(default_path.clone(), Arc::new(load_instance(&default_path)));

    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    // A disconnecting consumer (EPIPE) ends the service cleanly; any
    // other stdout failure is fatal.
    let mut emit = |report: WireReport| {
        let outcome = writeln!(out, "{}", format_report(&report)).and_then(|()| out.flush());
        match outcome {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
            Err(e) => {
                eprintln!("cannot write report: {e}");
                std::process::exit(1);
            }
        }
    };
    for line in stdin.lock().lines() {
        let line = line.expect("stdin readable");
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let wire = match parse_request(trimmed) {
            Ok(w) => w,
            Err(e) => {
                eprintln!("bad request: {e}");
                emit(WireReport::Failed(WireFailure {
                    id: 0,
                    code: "bad-request".into(),
                    bound: None,
                    floor: None,
                }));
                continue;
            }
        };
        let request = match SolveRequest::from_wire(&wire) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("request {}: {e}", wire.id);
                emit(WireReport::Failed(WireFailure {
                    id: wire.id,
                    code: "unknown-solver".into(),
                    bound: None,
                    floor: None,
                }));
                continue;
            }
        };
        let path = wire.instance.as_deref().unwrap_or(&default_path);
        let prepared = match instances.get(path) {
            Some(p) => Arc::clone(p),
            None => {
                // Unlike the default instance, per-request paths fail the
                // request, not the whole service.
                let text = match std::fs::read_to_string(path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("request {}: cannot read {path}: {e}", wire.id);
                        emit(WireReport::Failed(WireFailure {
                            id: wire.id,
                            code: "bad-instance".into(),
                            bound: None,
                            floor: None,
                        }));
                        continue;
                    }
                };
                match parse_instance(&text) {
                    Ok((app, pf)) => {
                        let p = Arc::new(PreparedInstance::new(app, pf));
                        instances.insert(path.to_string(), Arc::clone(&p));
                        p
                    }
                    Err(e) => {
                        eprintln!("request {}: cannot parse {path}: {e}", wire.id);
                        emit(WireReport::Failed(WireFailure {
                            id: wire.id,
                            code: "bad-instance".into(),
                            bound: None,
                            floor: None,
                        }));
                        continue;
                    }
                }
            }
        };
        emit(match prepared.solve(&request) {
            Ok(report) => report.to_wire(wire.id),
            Err(err) => err.to_wire(wire.id),
        });
    }
    std::process::exit(0);
}

fn run_sweep(mut args: impl Iterator<Item = String>) -> ! {
    let Some(which) = args.next() else { usage() };
    let mut stages: Option<usize> = None;
    let mut procs: Option<usize> = None;
    let mut instances = 50usize;
    let mut grid = 20usize;
    let mut threads = 1usize;
    let mut seed = 2007u64;
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--stages" => stages = Some(value.parse().unwrap_or_else(|_| usage())),
            "--procs" => procs = Some(value.parse().unwrap_or_else(|_| usage())),
            "--instances" => instances = value.parse().unwrap_or_else(|_| usage()),
            "--grid" => grid = value.parse().unwrap_or_else(|_| usage()),
            "--threads" => threads = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if threads < 1 || instances < 1 || grid < 2 {
        eprintln!("--threads and --instances must be >= 1, --grid >= 2");
        usage();
    }
    if stages == Some(0) || procs == Some(0) {
        eprintln!("--stages and --procs must be >= 1");
        usage();
    }
    let specs: Vec<_> = if which == "all" {
        scenario_zoo()
    } else {
        let Some(family) = ScenarioFamily::from_label(&which) else {
            eprintln!(
                "unknown family {which:?}; registered: {}",
                ScenarioFamily::ALL.map(|f| f.label()).join(", ")
            );
            std::process::exit(2);
        };
        scenario_zoo()
            .into_iter()
            .filter(|s| s.family == family)
            .collect()
    };
    println!(
        "{:<14} {:>4} {:>4} {:>9} {:>9} {:>9} {:>7} {:>8} {:>8}",
        "family", "n", "p", "P_single", "L_opt", "floor", "curves", "skipped", "ms"
    );
    for spec in specs {
        let mut params = spec.params();
        if let Some(n) = stages {
            params.n_stages = n;
        }
        if let Some(p) = procs {
            params.n_procs = p;
        }
        let t0 = std::time::Instant::now();
        let fam = run_scenario(&params, seed, instances, grid, threads);
        let ms = t0.elapsed().as_millis();
        println!(
            "{:<14} {:>4} {:>4} {:>9.3} {:>9.3} {:>9.3} {:>7} {:>8} {:>8}",
            spec.family.label(),
            params.n_stages,
            params.n_procs,
            fam.stats.mean_p_init,
            fam.stats.mean_l_opt,
            fam.stats.mean_best_floor,
            fam.series.len(),
            fam.skipped.len(),
            ms
        );
        if !fam.skipped.is_empty() {
            println!(
                "{:<14} skipped (platform class rejects them): {}",
                "",
                fam.skipped
                    .iter()
                    .map(|k| k.table_name())
                    .collect::<Vec<_>>()
                    .join(",")
            );
        }
    }
    std::process::exit(0);
}

/// Peak resident set size in kB (`VmHWM` from `/proc/self/status`), or
/// `None` where procfs is unavailable — the cheap RSS proxy
/// `bench-sweep` reports.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// `bench-sweep`: record the sweep/batch-throughput baseline as one JSON
/// object (see the module docs).
fn run_bench_sweep(mut args: impl Iterator<Item = String>) -> ! {
    use pipeline_workflows::core::Objective;
    use pipeline_workflows::experiments::{solve_batch, BatchJob, ShardOptions};
    use pipeline_workflows::model::scenario::ScenarioGenerator;
    use std::time::Instant;

    let mut out_path: Option<String> = None;
    let mut sizes: Vec<usize> = vec![60, 120, 240];
    let mut instances = 10usize;
    let mut grid = 12usize;
    let mut batch_jobs = 200usize;
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--sizes" => {
                sizes = value
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--instances" => instances = value.parse().unwrap_or_else(|_| usage()),
            "--grid" => grid = value.parse().unwrap_or_else(|_| usage()),
            "--batch-jobs" => batch_jobs = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if sizes.is_empty() || sizes.iter().any(|&n| n < 4) || instances < 1 || grid < 2 {
        eprintln!("--sizes entries must be >= 4, --instances >= 1, --grid >= 2");
        usage();
    }

    let mut json = String::from("{\n  \"bench\": \"sweep\",\n");
    json.push_str(&format!(
        "  \"config\": {{\"instances\": {instances}, \"grid\": {grid}, \"threads\": 1}},\n"
    ));

    // Full-zoo sweeps at each size: per-family wall time + skipped-solver
    // counts, and the aggregate bound-query throughput (instances ×
    // curves × grid points answered per second).
    json.push_str("  \"zoo\": [");
    for (si, &n) in sizes.iter().enumerate() {
        let p = (n / 2).max(2);
        let mut family_json = String::new();
        let mut queries = 0usize;
        let t_zoo = Instant::now();
        for (i, spec) in scenario_zoo().iter().enumerate() {
            let mut params = spec.params();
            params.n_stages = n;
            params.n_procs = p;
            let t0 = Instant::now();
            let fam = run_scenario(&params, 2007, instances, grid, 1);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            queries += instances * fam.series.len() * grid;
            if i > 0 {
                family_json.push_str(", ");
            }
            family_json.push_str(&format!(
                "\"{}\": {{\"ms\": {ms:.3}, \"curves\": {}, \"skipped_solvers\": {}}}",
                spec.family.label(),
                fam.series.len(),
                fam.skipped.len()
            ));
        }
        let total = t_zoo.elapsed().as_secs_f64();
        if si > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!(
            "{{\"n\": {n}, \"p\": {p}, \"total_ms\": {:.3}, \
             \"bound_queries_per_sec\": {:.0}, \"families\": {{{family_json}}}}}",
            total * 1e3,
            queries as f64 / total
        ));
    }
    json.push_str("],\n");

    // solve_batch throughput: the same job stream answered with a fresh
    // workspace per item (the `solve()` path) vs one workspace reused
    // across all items (`solve_batch` on one shard). Fresh prepared
    // instances per variant keep both cold-cache.
    {
        // One fresh instance per job: every item pays its preparation
        // (trajectory recording + H4 floor), which is exactly the work
        // the reused workspace amortizes. Shared instances would answer
        // from the session caches and hide the difference.
        let make_jobs = || {
            let gen = ScenarioGenerator::new(
                pipeline_workflows::model::scenario::ScenarioFamily::E2.params(60, 30),
            );
            (0..batch_jobs)
                .map(|j| {
                    let (app, pf) = gen.instance(99, j as u64);
                    let inst = Arc::new(PreparedInstance::new(app, pf));
                    let bound = inst.single_proc_period()
                        * (0.4 + 0.5 * (j as f64 / batch_jobs.max(1) as f64));
                    BatchJob::new(
                        inst,
                        SolveRequest::new(Objective::MinLatencyForPeriod(bound)),
                    )
                })
                .collect::<Vec<_>>()
        };
        let fresh_jobs = make_jobs();
        let t0 = Instant::now();
        let fresh_answers: usize = fresh_jobs
            .iter()
            .filter(|job| job.instance.solve(&job.request).is_ok())
            .count();
        let fresh_secs = t0.elapsed().as_secs_f64();
        let reused_jobs = make_jobs();
        let t0 = Instant::now();
        let reused_answers = solve_batch(reused_jobs, ShardOptions::with_threads(1))
            .into_iter()
            .filter(Result::is_ok)
            .count();
        let reused_secs = t0.elapsed().as_secs_f64();
        assert_eq!(fresh_answers, reused_answers, "variants must agree");
        json.push_str(&format!(
            "  \"solve_batch\": {{\"jobs\": {batch_jobs}, \"answered\": {fresh_answers}, \
             \"fresh_workspace_items_per_sec\": {:.0}, \
             \"reused_workspace_items_per_sec\": {:.0}}},\n",
            batch_jobs as f64 / fresh_secs,
            batch_jobs as f64 / reused_secs
        ));
    }

    match peak_rss_kb() {
        Some(kb) => json.push_str(&format!("  \"peak_rss_kb\": {kb}\n")),
        None => json.push_str("  \"peak_rss_kb\": null\n"),
    }
    json.push_str("}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    std::process::exit(0);
}

/// `bench-kernel`: record the kernel perf baseline as one JSON object.
fn run_bench_kernel(mut args: impl Iterator<Item = String>) -> ! {
    use pipeline_workflows::core::exact;
    use pipeline_workflows::core::trajectory::{fixed_period_trajectory, TrajectoryKind};
    use pipeline_workflows::core::{sp_bi_p, SpBiPOptions};
    use pipeline_workflows::model::generator::{ExperimentKind, InstanceGenerator, InstanceParams};
    use pipeline_workflows::model::CostModel;
    use std::time::Instant;

    let mut out_path: Option<String> = None;
    let mut exact_n_max = 14usize;
    let mut instances = 3usize;
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| {
            eprintln!("missing value for {flag}");
            usage();
        });
        match flag.as_str() {
            "--out" => out_path = Some(value),
            "--exact-n" => exact_n_max = value.parse().unwrap_or_else(|_| usage()),
            "--instances" => instances = value.parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    if instances < 1 {
        eprintln!("--instances must be >= 1");
        usage();
    }
    if !(2..=exact::MAX_STAGES).contains(&exact_n_max) {
        eprintln!(
            "--exact-n must be in 2..={} (the enumeration guard)",
            exact::MAX_STAGES
        );
        usage();
    }
    let mut json = String::from("{\n  \"bench\": \"kernel\",\n");

    // Sweep wall-time per scenario family (sharded engine, 1 thread —
    // the per-item kernel cost is what this baseline tracks).
    json.push_str("  \"sweep_ms\": {");
    for (i, spec) in scenario_zoo().iter().enumerate() {
        let params = spec.params();
        let t0 = Instant::now();
        let fam = run_scenario(&params, 2007, instances, 10, 1);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if i > 0 {
            json.push_str(", ");
        }
        json.push_str(&format!(
            "\"{}\": {{\"ms\": {:.3}, \"curves\": {}}}",
            spec.family.label(),
            ms,
            fam.series.len()
        ));
    }
    json.push_str("},\n");

    // Exact solver v2 at growing n up to --exact-n: min-period and the
    // full front. Sizes step by 2 from 10 (or measure just --exact-n
    // when it is smaller), so raising the flag really measures more.
    let mut exact_sizes: Vec<usize> = if exact_n_max < 10 {
        vec![exact_n_max]
    } else {
        (10..=exact_n_max).step_by(2).collect()
    };
    if exact_sizes.last() != Some(&exact_n_max) {
        exact_sizes.push(exact_n_max); // odd --exact-n: measure it too
    }
    json.push_str("  \"exact\": [");
    let mut first = true;
    for n in exact_sizes {
        let p = 6usize;
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, n, p));
        let (app, pf) = gen.instance(1, 0);
        let cm = CostModel::new(&app, &pf);
        let t0 = Instant::now();
        let (p_opt, _) = exact::exact_min_period(&cm);
        let min_period_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t0 = Instant::now();
        let front = exact::exact_pareto_front(&cm);
        let front_ms = t0.elapsed().as_secs_f64() * 1e3;
        if !first {
            json.push_str(", ");
        }
        first = false;
        json.push_str(&format!(
            "{{\"n\": {n}, \"p\": {p}, \"min_period\": {p_opt:.6}, \
             \"min_period_ms\": {min_period_ms:.3}, \"front_ms\": {front_ms:.3}, \
             \"front_points\": {}}}",
            front.len()
        ));
    }
    json.push_str("],\n");

    // Split-step throughput: H1 trajectories on a large instance.
    {
        let (n, p) = (240usize, 120usize);
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E1, n, p));
        let (app, pf) = gen.instance(3, 0);
        let cm = CostModel::new(&app, &pf);
        let steps = fixed_period_trajectory(&cm, TrajectoryKind::SplitMono).len() - 1;
        let runs = 50usize;
        let t0 = Instant::now();
        for _ in 0..runs {
            std::hint::black_box(fixed_period_trajectory(&cm, TrajectoryKind::SplitMono));
        }
        let secs = t0.elapsed().as_secs_f64();
        json.push_str(&format!(
            "  \"split_steps\": {{\"n\": {n}, \"p\": {p}, \"steps_per_run\": {steps}, \
             \"runs\": {runs}, \"steps_per_sec\": {:.0}}},\n",
            (steps * runs) as f64 / secs
        ));
    }

    // H3's memoized binary search on a mid-size instance.
    {
        let (n, p) = (120usize, 60usize);
        let gen = InstanceGenerator::new(InstanceParams::paper(ExperimentKind::E2, n, p));
        let (app, pf) = gen.instance(5, 0);
        let cm = CostModel::new(&app, &pf);
        let target = 0.5 * cm.single_proc_period();
        let t0 = Instant::now();
        let runs = 20usize;
        for _ in 0..runs {
            std::hint::black_box(sp_bi_p(&cm, target, SpBiPOptions::default()));
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / runs as f64;
        json.push_str(&format!(
            "  \"sp_bi_p\": {{\"n\": {n}, \"p\": {p}, \"ms_per_solve\": {ms:.3}}}\n"
        ));
    }
    json.push_str("}\n");

    match out_path {
        Some(path) => {
            std::fs::write(&path, &json).unwrap_or_else(|e| {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            });
            eprintln!("wrote {path}");
        }
        None => print!("{json}"),
    }
    std::process::exit(0);
}

fn main() {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else { usage() };
    if path == "--help" || path == "-h" {
        usage();
    }
    if path == "--sweep" {
        run_sweep(args);
    }
    if path == "solve" {
        run_service(args);
    }
    if path == "bench-kernel" {
        run_bench_kernel(args);
    }
    if path == "bench-sweep" {
        run_bench_sweep(args);
    }
    let mut objective: Option<Objective> = None;
    let mut strategy = Strategy::Auto;
    let mut simulate: Option<usize> = None;
    let mut gantt = false;
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                usage();
            })
        };
        match flag.as_str() {
            "--period" => {
                objective = Some(Objective::MinLatencyForPeriod(
                    value().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--latency" => {
                objective = Some(Objective::MinPeriodForLatency(
                    value().parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--min-period" => objective = Some(Objective::MinPeriod),
            "--min-latency" => objective = Some(Objective::MinLatency),
            "--pareto-front" => objective = Some(Objective::ParetoFront),
            "--heuristic" => strategy = parse_strategy(&value()),
            "--simulate" => simulate = Some(value().parse().unwrap_or_else(|_| usage())),
            "--gantt" => gantt = true,
            _ => usage(),
        }
    }
    let objective = objective.unwrap_or(Objective::MinPeriod);

    let prepared = load_instance(&path);
    let cm = prepared.cost_model();
    println!(
        "instance: {} stages (total work {:.2}), {} processors",
        prepared.app().n_stages(),
        prepared.app().total_work(),
        prepared.platform().n_procs()
    );
    println!(
        "landmarks: L_opt {:.4}, single-processor period {:.4}",
        prepared.optimal_latency(),
        prepared.single_proc_period()
    );

    let request = Scheduler::new().strategy(strategy).request(objective);
    let report = match prepared.solve(&request) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("cannot answer {objective:?}: {err}");
            std::process::exit(1);
        }
    };
    if let Some(front) = &report.front {
        println!("\nPareto front ({} points):", front.len());
        println!("{:>12} {:>12}  solver", "period", "latency");
        for (period, latency, solver) in front.iter() {
            println!("{period:>12.4} {latency:>12.4}  {}", solver.label());
        }
    }
    println!("\nsolver:  {}", report.solver.label());
    println!("mapping: {}", report.result.mapping);
    println!("period:  {:.4}", report.result.period);
    println!("latency: {:.4}", report.result.latency);
    if !report.result.feasible {
        println!("WARNING: the requested constraint was NOT met; best effort shown.");
    }

    if let Some(n) = simulate {
        let out = PipelineSim::new(
            &cm,
            &report.result.mapping,
            SimConfig {
                input: InputPolicy::Saturating,
                record_trace: gantt,
            },
        )
        .run(n.max(1));
        println!("\nsimulated {n} data sets (saturating input):");
        if let Some(sp) = out.report.steady_period() {
            println!("  steady period: {sp:.4}");
        }
        println!("  max latency:   {:.4}", out.report.max_latency());
        for &u in report.result.mapping.procs() {
            println!(
                "  P{u} utilization: {:.1}%",
                100.0 * out.report.utilization(u)
            );
        }
        if gantt {
            let horizon = out.report.makespan.min(report.result.period * 8.0);
            let visible: Vec<_> = out
                .trace
                .iter()
                .copied()
                .filter(|e| e.start < horizon)
                .collect();
            println!(
                "\n{}",
                Gantt::default().render(&visible, report.result.mapping.procs(), horizon)
            );
        }
    }
}
